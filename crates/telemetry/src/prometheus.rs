//! Prometheus text-exposition rendering of a [`MetricsSnapshot`].
//!
//! Emits format version 0.0.4 (the plain-text format every Prometheus
//! scraper accepts): counters as `kmm_<name>_total`, phase timers as a
//! labelled seconds counter plus an entry counter, and each log2
//! histogram as a native Prometheus histogram with cumulative
//! `_bucket{le="..."}` series, `_sum`, and `_count`. Dots in our metric
//! names become underscores (`search.nodes_visited` →
//! `kmm_search_nodes_visited_total`). Every series carries `# HELP` and
//! `# TYPE` headers, and every registered counter is emitted even at
//! zero, so the family set a scraper sees is identical before and after
//! the first query.
//!
//! Bucket boundaries are the histograms' inclusive upper bounds
//! re-expressed as Prometheus `le` thresholds; buckets above the highest
//! populated one are elided (they would all repeat the final cumulative
//! count), keeping the exposition small while remaining cumulative and
//! `+Inf`-terminated as the format requires.

use crate::alloc::{MemPhase, MemStats};
use crate::histogram::{bucket_upper_bound, HistogramSnapshot};
use crate::snapshot::MetricsSnapshot;

/// Rewrite a dotted metric name into a Prometheus metric identifier.
fn prom_name(name: &str) -> String {
    name.replace(['.', '-'], "_")
}

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline must be backslash-escaped.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Append one histogram in exposition format, with its headers.
fn render_histogram(out: &mut String, name: &str, help: &str, h: &HistogramSnapshot) {
    out.push_str(&format!("# HELP {name} {help}\n"));
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let highest = h.buckets.iter().rposition(|&n| n > 0).unwrap_or(0);
    let mut cumulative = 0u64;
    for (i, &n) in h.buckets.iter().enumerate().take(highest + 1) {
        cumulative += n;
        out.push_str(&format!(
            "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
            bucket_upper_bound(i)
        ));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
    out.push_str(&format!("{name}_sum {}\n", h.sum));
    out.push_str(&format!("{name}_count {}\n", h.count));
}

/// Render the whole snapshot as Prometheus text exposition.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();

    for c in &snapshot.counters {
        let name = format!("kmm_{}_total", prom_name(&c.name));
        out.push_str(&format!("# HELP {name} Monotonic event counter.\n"));
        out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.value));
    }

    out.push_str(
        "# HELP kmm_phase_seconds_total Wall-clock seconds credited to each pipeline phase.\n",
    );
    out.push_str("# TYPE kmm_phase_seconds_total counter\n");
    for p in &snapshot.phases {
        out.push_str(&format!(
            "kmm_phase_seconds_total{{phase=\"{}\"}} {}\n",
            escape_label(&p.name),
            p.total_ns as f64 / 1e9
        ));
    }
    out.push_str("# HELP kmm_phase_entries_total Spans credited to each pipeline phase.\n");
    out.push_str("# TYPE kmm_phase_entries_total counter\n");
    for p in &snapshot.phases {
        out.push_str(&format!(
            "kmm_phase_entries_total{{phase=\"{}\"}} {}\n",
            escape_label(&p.name),
            p.entries
        ));
    }

    for (name, h) in &snapshot.histograms {
        render_histogram(
            &mut out,
            &format!("kmm_{}", prom_name(name)),
            "Log2-bucketed value distribution.",
            h,
        );
    }

    out
}

/// Render the allocator's ledgers ([`crate::mem_stats`]) as Prometheus
/// gauges/counters. Emits the full family set even when tracking is
/// disabled (all zeros), so scrapes are shape-stable.
pub fn prometheus_mem_text(stats: &MemStats) -> String {
    let mut out = String::new();
    out.push_str("# HELP kmm_mem_live_bytes Heap bytes currently live (counting allocator).\n");
    out.push_str("# TYPE kmm_mem_live_bytes gauge\n");
    out.push_str(&format!("kmm_mem_live_bytes {}\n", stats.live_bytes));
    out.push_str("# HELP kmm_mem_peak_bytes Highest live-heap watermark since process start.\n");
    out.push_str("# TYPE kmm_mem_peak_bytes gauge\n");
    out.push_str(&format!("kmm_mem_peak_bytes {}\n", stats.peak_bytes));
    out.push_str(
        "# HELP kmm_mem_phase_allocated_bytes_total Bytes allocated while each phase was active.\n",
    );
    out.push_str("# TYPE kmm_mem_phase_allocated_bytes_total counter\n");
    for phase in MemPhase::ALL {
        out.push_str(&format!(
            "kmm_mem_phase_allocated_bytes_total{{mem_phase=\"{}\"}} {}\n",
            phase.name(),
            stats.phase(phase).allocated_bytes
        ));
    }
    out.push_str("# HELP kmm_mem_phase_allocations_total Allocations charged to each phase.\n");
    out.push_str("# TYPE kmm_mem_phase_allocations_total counter\n");
    for phase in MemPhase::ALL {
        out.push_str(&format!(
            "kmm_mem_phase_allocations_total{{mem_phase=\"{}\"}} {}\n",
            phase.name(),
            stats.phase(phase).allocations
        ));
    }
    out.push_str(
        "# HELP kmm_mem_phase_peak_live_bytes Peak live heap observed while each phase was active.\n",
    );
    out.push_str("# TYPE kmm_mem_phase_peak_live_bytes gauge\n");
    for phase in MemPhase::ALL {
        out.push_str(&format!(
            "kmm_mem_phase_peak_live_bytes{{mem_phase=\"{}\"}} {}\n",
            phase.name(),
            stats.phase(phase).peak_live_bytes
        ));
    }
    out
}

impl MetricsSnapshot {
    /// Prometheus text exposition of this snapshot
    /// (see [`prometheus_text`]).
    pub fn to_prometheus(&self) -> String {
        prometheus_text(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Counter, Hist, MetricsRecorder, Phase, Recorder};

    fn sample() -> MetricsSnapshot {
        let rec = MetricsRecorder::new();
        rec.add(Counter::Queries, 7);
        {
            let _span = rec.span(Phase::SearchQuery);
        }
        for v in [3u64, 5, 100] {
            rec.observe(Hist::SearchLatencyNs, v);
        }
        rec.snapshot()
    }

    #[test]
    fn exposition_has_typed_counters_and_histograms() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE kmm_search_queries_total counter"));
        assert!(text.contains("kmm_search_queries_total 7"));
        assert!(text.contains("# TYPE kmm_search_latency_ns histogram"));
        assert!(text.contains("kmm_phase_entries_total{phase=\"search.query\"} 1"));
        // Every non-comment line is `name{labels} value` with a numeric
        // value; every metric line is preceded somewhere by its # TYPE.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("metric line has a value");
            assert!(value.parse::<f64>().is_ok(), "bad value in line: {line}");
        }
    }

    #[test]
    fn every_series_has_help_and_type_headers() {
        let text = sample().to_prometheus();
        let metric_base = |line: &str| -> String {
            let name = line.split([' ', '{']).next().unwrap().to_string();
            for suffix in ["_bucket", "_sum", "_count"] {
                if let Some(base) = name.strip_suffix(suffix) {
                    // Histogram child series belong to the base family —
                    // unless the full name is itself a declared family
                    // (e.g. the `..._total` counters ending in `_count`).
                    if text.contains(&format!("# TYPE {base} histogram")) {
                        return base.to_string();
                    }
                }
            }
            name
        };
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let base = metric_base(line);
            assert!(
                text.contains(&format!("# TYPE {base} ")),
                "no TYPE header for {base}"
            );
            assert!(
                text.contains(&format!("# HELP {base} ")),
                "no HELP header for {base}"
            );
        }
    }

    #[test]
    fn zero_counters_are_still_emitted() {
        // A scrape before any query must expose the full counter family
        // set, including the deterministic cost counters, all at zero.
        let text = MetricsRecorder::new().snapshot().to_prometheus();
        for c in Counter::ALL {
            let name = format!("kmm_{}_total", prom_name(c.name()));
            assert!(text.contains(&format!("{name} 0\n")), "missing {name}");
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_inf_terminated() {
        let text = sample().to_prometheus();
        // Observations 3, 5, 100 → buckets le="3":1, le="7":2, then the
        // elided middle, and le="127":3 as the highest populated bucket.
        assert!(text.contains("kmm_search_latency_ns_bucket{le=\"3\"} 1\n"));
        assert!(text.contains("kmm_search_latency_ns_bucket{le=\"7\"} 2\n"));
        assert!(text.contains("kmm_search_latency_ns_bucket{le=\"127\"} 3\n"));
        assert!(text.contains("kmm_search_latency_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("kmm_search_latency_ns_sum 108\n"));
        assert!(text.contains("kmm_search_latency_ns_count 3\n"));
        // Cumulative counts never decrease, and +Inf equals _count.
        let mut last = 0u64;
        let mut inf = None;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("kmm_search_latency_ns_bucket") {
                let v: u64 = rest.rsplit_once(' ').unwrap().1.parse().unwrap();
                assert!(v >= last);
                last = v;
                if rest.contains("+Inf") {
                    inf = Some(v);
                }
            }
        }
        assert_eq!(inf, Some(3));
    }

    #[test]
    fn empty_snapshot_still_renders_valid_text() {
        let text = MetricsRecorder::new().snapshot().to_prometheus();
        assert!(text.contains("# TYPE"));
        assert!(text.contains("kmm_search_latency_ns_bucket{le=\"+Inf\"} 0\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\"b"), "a\\\"b");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("a\nb"), "a\\nb");
        // Combined: each hazard escaped independently.
        assert_eq!(escape_label("\"\\\n"), "\\\"\\\\\\n");
    }

    #[test]
    fn mem_text_is_shape_stable_and_typed() {
        let stats = crate::alloc::mem_stats();
        let text = prometheus_mem_text(&stats);
        assert!(text.contains("# TYPE kmm_mem_live_bytes gauge"));
        assert!(text.contains("# HELP kmm_mem_peak_bytes "));
        for phase in MemPhase::ALL {
            assert!(text.contains(&format!(
                "kmm_mem_phase_allocated_bytes_total{{mem_phase=\"{}\"}}",
                phase.name()
            )));
        }
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad value: {line}");
        }
    }
}
