//! Prometheus text-exposition rendering of a [`MetricsSnapshot`].
//!
//! Emits format version 0.0.4 (the plain-text format every Prometheus
//! scraper accepts): counters as `kmm_<name>_total`, phase timers as a
//! labelled seconds counter plus an entry counter, and each log2
//! histogram as a native Prometheus histogram with cumulative
//! `_bucket{le="..."}` series, `_sum`, and `_count`. Dots in our metric
//! names become underscores (`search.nodes_visited` →
//! `kmm_search_nodes_visited_total`).
//!
//! Bucket boundaries are the histograms' inclusive upper bounds
//! re-expressed as Prometheus `le` thresholds; buckets above the highest
//! populated one are elided (they would all repeat the final cumulative
//! count), keeping the exposition small while remaining cumulative and
//! `+Inf`-terminated as the format requires.

use crate::histogram::{bucket_upper_bound, HistogramSnapshot};
use crate::snapshot::MetricsSnapshot;

/// Rewrite a dotted metric name into a Prometheus metric identifier.
fn prom_name(name: &str) -> String {
    name.replace(['.', '-'], "_")
}

/// Append one `# TYPE`-prefixed histogram in exposition format.
fn render_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let highest = h.buckets.iter().rposition(|&n| n > 0).unwrap_or(0);
    let mut cumulative = 0u64;
    for (i, &n) in h.buckets.iter().enumerate().take(highest + 1) {
        cumulative += n;
        out.push_str(&format!(
            "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
            bucket_upper_bound(i)
        ));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
    out.push_str(&format!("{name}_sum {}\n", h.sum));
    out.push_str(&format!("{name}_count {}\n", h.count));
}

/// Render the whole snapshot as Prometheus text exposition.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();

    for c in &snapshot.counters {
        let name = format!("kmm_{}_total", prom_name(&c.name));
        out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.value));
    }

    out.push_str("# TYPE kmm_phase_seconds_total counter\n");
    for p in &snapshot.phases {
        out.push_str(&format!(
            "kmm_phase_seconds_total{{phase=\"{}\"}} {}\n",
            p.name,
            p.total_ns as f64 / 1e9
        ));
    }
    out.push_str("# TYPE kmm_phase_entries_total counter\n");
    for p in &snapshot.phases {
        out.push_str(&format!(
            "kmm_phase_entries_total{{phase=\"{}\"}} {}\n",
            p.name, p.entries
        ));
    }

    for (name, h) in &snapshot.histograms {
        render_histogram(&mut out, &format!("kmm_{}", prom_name(name)), h);
    }

    out
}

impl MetricsSnapshot {
    /// Prometheus text exposition of this snapshot
    /// (see [`prometheus_text`]).
    pub fn to_prometheus(&self) -> String {
        prometheus_text(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Counter, Hist, MetricsRecorder, Phase, Recorder};

    fn sample() -> MetricsSnapshot {
        let rec = MetricsRecorder::new();
        rec.add(Counter::Queries, 7);
        {
            let _span = rec.span(Phase::SearchQuery);
        }
        for v in [3u64, 5, 100] {
            rec.observe(Hist::SearchLatencyNs, v);
        }
        rec.snapshot()
    }

    #[test]
    fn exposition_has_typed_counters_and_histograms() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE kmm_search_queries_total counter"));
        assert!(text.contains("kmm_search_queries_total 7"));
        assert!(text.contains("# TYPE kmm_search_latency_ns histogram"));
        assert!(text.contains("kmm_phase_entries_total{phase=\"search.query\"} 1"));
        // Every non-comment line is `name{labels} value` with a numeric
        // value; every metric line is preceded somewhere by its # TYPE.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("metric line has a value");
            assert!(value.parse::<f64>().is_ok(), "bad value in line: {line}");
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_inf_terminated() {
        let text = sample().to_prometheus();
        // Observations 3, 5, 100 → buckets le="3":1, le="7":2, then the
        // elided middle, and le="127":3 as the highest populated bucket.
        assert!(text.contains("kmm_search_latency_ns_bucket{le=\"3\"} 1\n"));
        assert!(text.contains("kmm_search_latency_ns_bucket{le=\"7\"} 2\n"));
        assert!(text.contains("kmm_search_latency_ns_bucket{le=\"127\"} 3\n"));
        assert!(text.contains("kmm_search_latency_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("kmm_search_latency_ns_sum 108\n"));
        assert!(text.contains("kmm_search_latency_ns_count 3\n"));
        // Cumulative counts never decrease.
        let mut last = 0u64;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("kmm_search_latency_ns_bucket") {
                let v: u64 = rest.rsplit_once(' ').unwrap().1.parse().unwrap();
                assert!(v >= last);
                last = v;
            }
        }
    }

    #[test]
    fn empty_snapshot_still_renders_valid_text() {
        let text = MetricsRecorder::new().snapshot().to_prometheus();
        assert!(text.contains("# TYPE"));
        assert!(text.contains("kmm_search_latency_ns_bucket{le=\"+Inf\"} 0\n"));
    }
}
