//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses: the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`,
//! integer-range / collection / tuple / `prop_map` strategies,
//! `any::<T>()` and `prop::sample::Index`.
//!
//! The build environment has no network access to crates.io, so the real
//! `proptest` cannot be vendored. This implementation generates random
//! cases deterministically (seeded per case index) and reports the first
//! failing input — it does **not** shrink counterexamples, and it ignores
//! `proptest-regressions` files. Failures print the full generated input,
//! which for this workspace's small test sizes is enough to reproduce by
//! hand.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build the deterministic per-case generator used by the `proptest!`
/// macro expansion. Public only for macro use.
#[doc(hidden)]
pub fn __rng_for_case(case: u32) -> StdRng {
    StdRng::seed_from_u64(0x6b6d6d_70726f70 ^ (case as u64).wrapping_mul(0x9e3779b97f4a7c15))
}

pub mod test_runner {
    /// A failed test case (the error payload of `prop_assert*`).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Runner configuration (only the case count is honoured).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real proptest defaults to 256; 64 keeps un-configured
            // suites fast while still exercising the property.
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use super::*;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Generate one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::*;

    /// Length distribution for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Generate `Vec`s whose elements come from `element` and whose length
    /// comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::*;

    /// Types with a canonical strategy (`any::<T>()`).
    pub trait Arbitrary: Sized + Debug {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen::<$t>()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);
}

pub mod sample {
    use super::arbitrary::Arbitrary;
    use super::*;

    /// A position into a collection of as-yet-unknown size (resolved by
    /// [`Index::index`] at use time).
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolve against a collection of `size` elements.
        ///
        /// # Panics
        /// Panics if `size` is zero.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "cannot index an empty collection");
            (self.0 % size as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut StdRng) -> Self {
            Index(rng.gen::<u64>())
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` module alias used in strategy expressions.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident ($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::__rng_for_case(case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            e,
                            inputs
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` for property bodies: fails the case instead of panicking so
/// the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "{} ({:?} != {:?})", format!($($fmt)+), a, b);
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "{} ({:?} == {:?})", format!($($fmt)+), a, b);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_case() {
        let s = prop::collection::vec(1u8..=4, 1..10);
        let a = Strategy::generate(&s, &mut crate::__rng_for_case(3));
        let b = Strategy::generate(&s, &mut crate::__rng_for_case(3));
        let c = Strategy::generate(&s, &mut crate::__rng_for_case(4));
        assert_eq!(a, b);
        // Different cases almost surely differ; tolerate collision by
        // checking over several cases.
        let differs = (0..20).any(|i| Strategy::generate(&s, &mut crate::__rng_for_case(i)) != c);
        assert!(differs);
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let s = prop::collection::vec(0usize..5, 2..7);
        for case in 0..200 {
            let v = Strategy::generate(&s, &mut crate::__rng_for_case(case));
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn sample_index_is_in_bounds() {
        for case in 0..100 {
            let ix: prop::sample::Index = Strategy::generate(
                &any::<prop::sample::Index>(),
                &mut crate::__rng_for_case(case),
            );
            assert!(ix.index(7) < 7);
            assert_eq!(ix.index(1), 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(
            v in prop::collection::vec(1u8..=4, 1..20),
            k in 0usize..5,
        ) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&b| (1..=4).contains(&b)));
            prop_assert_eq!(k.min(4), k, "k must stay below 5");
        }

        #[test]
        fn tuples_and_maps_compose(
            t in (1usize..5, 0u8..2).prop_map(|(n, b)| vec![b; n]),
        ) {
            prop_assert!((1..5).contains(&t.len()));
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failing_property_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
