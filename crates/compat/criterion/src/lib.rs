//! Offline stand-in for the subset of the `criterion` API this
//! workspace's benches use (`criterion_group!`/`criterion_main!`,
//! benchmark groups, `bench_with_input`, `Bencher::iter`).
//!
//! The build environment has no network access to crates.io, so the real
//! `criterion` cannot be vendored. This runner takes a small fixed number
//! of timed iterations per benchmark and prints median wall-clock times —
//! useful as a smoke-level perf signal, with none of criterion's
//! statistics, warm-up control, or HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Timed samples per benchmark (first is treated as warm-up).
const SAMPLES: usize = 3;

/// Hide a value from the optimiser.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark context handed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup { _c: self, name }
    }

    /// Benchmark a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub always runs
    /// [`SAMPLES`] samples.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmark `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.0), |b| f(b, input));
        self
    }

    /// Benchmark `f` without an input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut times: Vec<Duration> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed);
    }
    times.sort();
    eprintln!(
        "  {label}: median {:?} over {SAMPLES} samples {times:?}",
        times[SAMPLES / 2]
    );
}

/// Runs the measured routine and records its wall-clock time.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Time one execution of `routine` (the stub does not loop internally).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed = start.elapsed();
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Work-per-iteration annotation (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_time() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0usize;
        group.sample_size(10).throughput(Throughput::Bytes(1));
        group.bench_with_input(BenchmarkId::new("f", 1), &41u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                x + 1
            })
        });
        group.finish();
        assert_eq!(runs, super::SAMPLES);
    }

    fn sample_target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(benches, sample_target);

    #[test]
    fn group_macro_runs_targets() {
        benches();
    }
}
