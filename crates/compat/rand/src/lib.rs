//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses (`StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range,
//! gen_bool}`).
//!
//! The build environment has no network access to crates.io, so the real
//! `rand` cannot be vendored; this crate keeps the workspace buildable
//! and its randomised tests deterministic. The generator is xoshiro256++
//! seeded through SplitMix64 — statistically solid for test-data
//! generation, **not** cryptographically secure, and its stream differs
//! from the real `StdRng` (seeded tests are reproducible against this
//! stub, not against upstream `rand`).

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Sample a value from the type's standard distribution (`[0, 1)` for
    /// floats, uniform for integers and `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types with a standard distribution (`Rng::gen`).
pub trait Standard {
    /// Sample one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce a uniform sample (`Rng::gen_range`).
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)`. Modulo with a 64-bit source: the bias
/// is < 2^-32 for every span this workspace uses — irrelevant for test
/// data.
#[inline]
fn uniform_below(rng: &mut (impl RngCore + ?Sized), span: u128) -> u128 {
    debug_assert!(span > 0);
    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    wide % span
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f32::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s
    /// `StdRng`; different stream, same role).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0..u64::MAX)).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u8 = rng.gen_range(1..=4);
            assert!((1..=4).contains(&w));
            let f: f64 = rng.gen_range(1e-9..1.0f64);
            assert!((1e-9..1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn all_range_values_reachable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| rng.gen_bool(1.0)).count(), 100);
    }

    #[test]
    fn signed_and_inclusive_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let w: i64 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&w));
        }
    }
}
