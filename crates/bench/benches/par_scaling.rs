//! Thread-scaling benchmark: batch k-mismatch search throughput as a
//! function of worker count.
//!
//! The batch path is deterministic — occurrence lists and stats are
//! bit-identical at every width — so this bench measures pure wall-clock
//! scaling. Run on a multi-core host to see the speedup; on a single
//! hardware thread the sweep reports the pool's scheduling overhead
//! instead (no assertion is made about throughput either way).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kmm_bench::{run_method_par, Workload};
use kmm_core::Method;
use kmm_dna::genome::ReferenceGenome;
use kmm_par::ThreadPool;

fn bench_par_scaling(c: &mut Criterion) {
    let w = Workload::paper(ReferenceGenome::Rat, 0.05, 100, 100);
    let idx = w.index();
    let mut group = c.benchmark_group("par_scaling_batch_search");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let pool = ThreadPool::new(threads);
        group.bench_with_input(
            BenchmarkId::new("search_batch_par", threads),
            &pool,
            |b, pool| {
                b.iter(|| run_method_par(&idx, &w.reads, 2, Method::ALGORITHM_A, pool).occurrences)
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("par_scaling_index_build");
    group.sample_size(10);
    let genome = {
        let mut g = ReferenceGenome::Rat.generate_scaled(0.05);
        g.reverse();
        g.push(0);
        g
    };
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("fm_build", threads), &threads, |b, &t| {
            b.iter(|| {
                kmm_bwt::FmIndex::new(&genome, kmm_bwt::FmBuildConfig::default().with_threads(t))
                    .heap_bytes()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_par_scaling);
criterion_main!(benches);
