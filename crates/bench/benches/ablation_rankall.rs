//! Ablation A1 (DESIGN.md): rankall checkpoint rate.
//!
//! The paper stores one rankall row every 4 elements and remarks that
//! sparser rows trade time for space (Section III-A). This bench sweeps
//! the rate over exact backward searches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kmm_bench::simulate_reads;
use kmm_bwt::{FmBuildConfig, FmIndex};
use kmm_dna::genome::ReferenceGenome;

fn bench_rankall_rate(c: &mut Criterion) {
    let genome = ReferenceGenome::RatChr1.generate_scaled(0.1);
    let reads = simulate_reads(&genome, 200, 100, 7);
    let mut rev = genome;
    rev.reverse();
    rev.push(0);
    let mut group = c.benchmark_group("ablation_rankall_rate");
    group.sample_size(10);
    for rate in [4usize, 16, 64, 128] {
        let fm = FmIndex::new(
            &rev,
            FmBuildConfig {
                occ_rate: rate,
                sa_rate: 16,
                ..FmBuildConfig::default()
            },
        );
        group.bench_with_input(BenchmarkId::new("exact_count", rate), &fm, |b, fm| {
            b.iter(|| {
                let mut total = 0u64;
                for r in &reads {
                    let rrev: Vec<u8> = r.iter().rev().copied().collect();
                    total += fm.count(&rrev) as u64;
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rankall_rate);
criterion_main!(benches);
