//! Fused rank scaling: `extend_all` vs four `extend_backward` calls.
//!
//! PR 5 rebuilt `RankAll` around interleaved cache-line blocks so a full
//! 4-way node expansion touches two blocks instead of eight scattered
//! checkpoint rows. This bench times both expansion styles over an
//! identical, deterministically harvested interval worklist at several
//! checkpoint rates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kmm_bench::occbench_intervals;
use kmm_bwt::{FmBuildConfig, FmIndex};
use kmm_dna::genome::ReferenceGenome;

fn bench_occ_scaling(c: &mut Criterion) {
    let genome = ReferenceGenome::RatChr1.generate_scaled(0.1);
    let mut rev = genome;
    rev.reverse();
    rev.push(0);
    let mut group = c.benchmark_group("occ_scaling");
    group.sample_size(10);
    for rate in [32usize, 64, 128] {
        let fm = FmIndex::new(
            &rev,
            FmBuildConfig {
                occ_rate: rate,
                sa_rate: 16,
                ..FmBuildConfig::default()
            },
        );
        let work = occbench_intervals(&fm, 2_000, 0x00cc_5eed);
        group.bench_with_input(
            BenchmarkId::new("four_extend_backward", rate),
            &(&fm, &work),
            |b, (fm, work)| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for &iv in work.iter() {
                        for y in 1..=4u8 {
                            let child = fm.extend_backward(iv, y);
                            acc = acc
                                .wrapping_add(child.lo as u64)
                                .wrapping_add((child.hi as u64) << 32);
                        }
                    }
                    acc
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fused_extend_all", rate),
            &(&fm, &work),
            |b, (fm, work)| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for &iv in work.iter() {
                        for child in fm.extend_all(iv) {
                            acc = acc
                                .wrapping_add(child.lo as u64)
                                .wrapping_add((child.hi as u64) << 32);
                        }
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_occ_scaling);
criterion_main!(benches);
