//! Reconstructed Fig. 12: the four methods across all five genome
//! stand-ins at k = 5 (the paper's OCR truncates just as its per-genome
//! sweep begins; DESIGN.md E5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kmm_bench::{run_method, Workload};
use kmm_core::Method;
use kmm_dna::genome::ReferenceGenome;

fn bench_fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_per_genome");
    group.sample_size(10);
    for g in ReferenceGenome::ALL {
        let w = Workload::paper(g, 0.01, 10, 100);
        if w.genome.len() < 1000 {
            continue;
        }
        let idx = w.index();
        idx.suffix_tree();
        let short = match g {
            ReferenceGenome::Rat => "Rat",
            ReferenceGenome::Zebrafish => "Zebrafish",
            ReferenceGenome::RatChr1 => "RatChr1",
            ReferenceGenome::CElegans => "CElegans",
            ReferenceGenome::CMerolae => "CMerolae",
        };
        for method in Method::PAPER_SET {
            group.bench_with_input(
                BenchmarkId::new(method.label(), short),
                &w.reads,
                |b, reads| b.iter(|| run_method(&idx, reads, 5, method).occurrences),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
