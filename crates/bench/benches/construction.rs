//! Ablation A3 (DESIGN.md): index construction cost (SA-IS, BWT, rankall,
//! suffix tree). The paper excludes construction from its timings ("once
//! it is created, it can be repeatedly used"); this bench documents it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kmm_bwt::{FmBuildConfig, FmIndex};
use kmm_dna::genome::ReferenceGenome;
use kmm_suffix::{suffix_array, SuffixTree};

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    group.sample_size(10);
    for scale in [0.002f64, 0.01, 0.05] {
        let genome = ReferenceGenome::Rat.generate_scaled(scale);
        let n = genome.len();
        let mut text = genome.clone();
        text.reverse();
        text.push(0);
        group.throughput(Throughput::Bytes(n as u64));
        group.bench_with_input(BenchmarkId::new("sais", n), &text, |b, text| {
            b.iter(|| suffix_array(text, kmm_dna::SIGMA))
        });
        group.bench_with_input(BenchmarkId::new("fm_index", n), &text, |b, text| {
            b.iter(|| FmIndex::new(text, FmBuildConfig::default()))
        });
        let mut fwd = genome.clone();
        fwd.push(0);
        group.bench_with_input(BenchmarkId::new("suffix_tree", n), &fwd, |b, fwd| {
            b.iter(|| SuffixTree::new(fwd.clone(), kmm_dna::SIGMA))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
