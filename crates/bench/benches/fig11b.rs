//! Paper Fig. 11(b): average k-mismatch search time as a function of read
//! length (k = 5) for the four compared methods on the Rat genome
//! stand-in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kmm_bench::{run_method, simulate_reads};
use kmm_core::{KMismatchIndex, Method};
use kmm_dna::genome::ReferenceGenome;

fn bench_fig11b(c: &mut Criterion) {
    let g = ReferenceGenome::Rat;
    let genome = g.generate_scaled(0.01);
    let idx = KMismatchIndex::new(genome.clone());
    idx.suffix_tree();
    let mut group = c.benchmark_group("fig11b_time_vs_read_len");
    group.sample_size(10);
    for read_len in [50usize, 100, 150, 200, 250, 300] {
        let reads = simulate_reads(&genome, 10, read_len, g.seed() ^ 0x5eed);
        for method in Method::PAPER_SET {
            group.bench_with_input(
                BenchmarkId::new(method.label(), read_len),
                &reads,
                |b, reads| b.iter(|| run_method(&idx, reads, 5, method).occurrences),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig11b);
criterion_main!(benches);
