//! Ablation A2 (DESIGN.md): the design choices of the two BWT tree
//! searches — Algorithm A's pair-reuse hash table on/off, and the BWT
//! baseline's φ heuristic on/off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kmm_bench::{run_method, Workload};
use kmm_core::Method;
use kmm_dna::genome::ReferenceGenome;

fn bench_reuse(c: &mut Criterion) {
    let w = Workload::paper(ReferenceGenome::RatChr1, 0.1, 10, 100);
    let idx = w.index();
    let mut group = c.benchmark_group("ablation_reuse_phi");
    group.sample_size(10);
    let variants: [(&str, Method); 4] = [
        ("A_reuse_on", Method::AlgorithmA { reuse: true }),
        ("A_reuse_off", Method::AlgorithmA { reuse: false }),
        ("BWT_phi_on", Method::Bwt { use_phi: true }),
        ("BWT_phi_off", Method::Bwt { use_phi: false }),
    ];
    for k in [2usize, 4] {
        for (name, method) in variants {
            group.bench_with_input(BenchmarkId::new(name, k), &k, |b, &k| {
                b.iter(|| run_method(&idx, &w.reads, k, method).occurrences)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_reuse);
criterion_main!(benches);
