//! Paper Table 2: cost of Algorithm A as k and the read length grow
//! together (k/len = 5/50, 10/100; the 20/150 and 30/200 cells explode
//! combinatorially and are produced by the `experiments` binary instead,
//! which also prints the leaf counts n' the table is about).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kmm_bench::{run_method, simulate_reads};
use kmm_core::{KMismatchIndex, Method};
use kmm_dna::genome::ReferenceGenome;

fn bench_table2(c: &mut Criterion) {
    let g = ReferenceGenome::Rat;
    let genome = g.generate_scaled(0.005);
    let idx = KMismatchIndex::new(genome.clone());
    let mut group = c.benchmark_group("table2_k_and_len");
    group.sample_size(10);
    for (k, len) in [(5usize, 50usize), (10, 100)] {
        let reads = simulate_reads(&genome, 5, len, g.seed() ^ 0x5eed);
        group.bench_with_input(
            BenchmarkId::new("A", format!("{k}-{len}")),
            &reads,
            |b, reads| b.iter(|| run_method(&idx, reads, k, Method::ALGORITHM_A).stats.leaves),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
