//! Paper Fig. 11(a): average k-mismatch search time as a function of `k`
//! for the four compared methods (BWT [34], Amir's, Cole's, A(·)) on the
//! Rat genome stand-in.
//!
//! Criterion runs at 1:10 of the `experiments` binary's default workload
//! so a full sweep stays in benchmark-friendly territory; the binary
//! regenerates the figure at larger scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kmm_bench::{run_method, Workload};
use kmm_core::Method;
use kmm_dna::genome::ReferenceGenome;

fn bench_fig11a(c: &mut Criterion) {
    let w = Workload::paper(ReferenceGenome::Rat, 0.01, 10, 100);
    let idx = w.index();
    idx.suffix_tree(); // pre-build for Cole, matching the paper's protocol
    let mut group = c.benchmark_group("fig11a_time_vs_k");
    group.sample_size(10);
    for k in [1usize, 2, 3, 4, 5] {
        for method in Method::PAPER_SET {
            group.bench_with_input(BenchmarkId::new(method.label(), k), &k, |b, &k| {
                b.iter(|| run_method(&idx, &w.reads, k, method).occurrences)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig11a);
criterion_main!(benches);
