//! # kmm-bench
//!
//! Shared machinery for regenerating the paper's tables and figures
//! (Section V): deterministic workload construction (genome + wgsim-style
//! reads), timed method runs, and plain-text table formatting. The
//! `experiments` binary and the Criterion benches are thin layers over
//! this crate.

use std::time::Instant;

use kmm_core::{KMismatchIndex, Method, SearchStats};
use kmm_dna::genome::ReferenceGenome;
use kmm_dna::reads::{ReadSimConfig, ReadSimulator};

/// A reproducible experiment workload: one genome and a batch of reads.
#[derive(Debug)]
pub struct Workload {
    /// Display name ("Rat (Rnor_6.0) @0.10" etc.).
    pub name: String,
    /// The encoded genome.
    pub genome: Vec<u8>,
    /// The encoded reads.
    pub reads: Vec<Vec<u8>>,
}

impl Workload {
    /// Build the paper's workload for one reference genome: `count` reads
    /// of `read_len` bp with the wgsim default error model, genome scaled
    /// by `scale` relative to the 1:100 sizes of DESIGN.md.
    pub fn paper(g: ReferenceGenome, scale: f64, count: usize, read_len: usize) -> Workload {
        let genome = g.generate_scaled(scale);
        let reads = simulate_reads(&genome, count, read_len, g.seed() ^ 0x5eed);
        Workload {
            name: format!("{} @{scale:.2}", g.name()),
            genome,
            reads,
        }
    }

    /// Index the genome once for this workload.
    pub fn index(&self) -> KMismatchIndex {
        KMismatchIndex::new(self.genome.clone())
    }
}

/// Simulate `count` forward-strand reads with the wgsim default model.
pub fn simulate_reads(genome: &[u8], count: usize, read_len: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut sim = ReadSimulator::new(genome, ReadSimConfig::paper(read_len), seed);
    sim.reads(count).into_iter().map(|r| r.seq).collect()
}

/// The outcome of running one method over a read batch.
#[derive(Debug, Clone)]
pub struct TimedRun {
    /// Method label as in the paper's legends.
    pub method: &'static str,
    /// Total wall-clock seconds over the batch.
    pub seconds: f64,
    /// Total occurrences reported.
    pub occurrences: usize,
    /// Accumulated method counters.
    pub stats: SearchStats,
}

/// Run `method` over every read and time the batch.
pub fn run_method(
    index: &KMismatchIndex,
    reads: &[Vec<u8>],
    k: usize,
    method: Method,
) -> TimedRun {
    // Cole needs the suffix tree; build it outside the timed region, like
    // the paper ("the time for constructing BWT(s̄) is not included").
    if matches!(method, Method::Cole) {
        index.suffix_tree();
    }
    let start = Instant::now();
    let mut stats = SearchStats::default();
    let mut occurrences = 0usize;
    for r in reads {
        let res = index.search(r, k, method);
        occurrences += res.occurrences.len();
        stats.accumulate(&res.stats);
    }
    TimedRun {
        method: method.label(),
        seconds: start.elapsed().as_secs_f64(),
        occurrences,
        stats,
    }
}

/// Render rows as a fixed-width text table with a header.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Human-readable second formatting for table cells.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let a = Workload::paper(ReferenceGenome::CMerolae, 0.05, 5, 40);
        let b = Workload::paper(ReferenceGenome::CMerolae, 0.05, 5, 40);
        assert_eq!(a.genome, b.genome);
        assert_eq!(a.reads, b.reads);
        assert_eq!(a.reads.len(), 5);
        assert!(a.reads.iter().all(|r| r.len() == 40));
    }

    #[test]
    fn run_method_counts_occurrences() {
        let w = Workload::paper(ReferenceGenome::CMerolae, 0.02, 4, 30);
        let idx = w.index();
        let run = run_method(&idx, &w.reads, 2, Method::ALGORITHM_A);
        // Every read was sampled from the genome with ~2% errors, so with
        // k = 2 most reads should find their origin.
        assert!(run.occurrences >= 1);
        assert!(run.seconds >= 0.0);
        assert_eq!(run.method, "A(.)");
        // And the result must match the naive scan.
        let naive = run_method(&idx, &w.reads, 2, Method::Naive);
        assert_eq!(run.occurrences, naive.occurrences);
    }

    #[test]
    fn table_formatting_aligns() {
        let t = format_table(
            &["k", "time"],
            &[
                vec!["1".into(), "5ms".into()],
                vec!["10".into(), "1.2s".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('k'));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_secs(0.0025), "2.50ms");
        assert_eq!(fmt_secs(0.0000025), "2.5us");
    }
}
