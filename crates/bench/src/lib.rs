//! # kmm-bench
//!
//! Shared machinery for regenerating the paper's tables and figures
//! (Section V): deterministic workload construction (genome + wgsim-style
//! reads), timed method runs, and plain-text table formatting. The
//! `experiments` binary and the Criterion benches are thin layers over
//! this crate.

pub mod diff;
pub mod soak;

pub use soak::{run_servesoak, write_serve_json, ServeSoakRecord, SERVE_EXPERIMENT};

use std::path::{Path, PathBuf};
use std::time::Instant;

use kmm_bwt::{FmBuildConfig, FmIndex, Interval};
use kmm_core::{KMismatchIndex, Method, SearchStats};
use kmm_dna::genome::ReferenceGenome;
use kmm_dna::reads::{ReadSimConfig, ReadSimulator};
use kmm_par::ThreadPool;
use kmm_telemetry::{Hist, Json, MetricsRecorder};

/// Schema tag stamped into every `BENCH_*.json` artifact.
pub const BENCH_SCHEMA: &str = "kmm-bench/v1";

/// A reproducible experiment workload: one genome and a batch of reads.
#[derive(Debug)]
pub struct Workload {
    /// Display name ("Rat (Rnor_6.0) @0.10" etc.).
    pub name: String,
    /// The encoded genome.
    pub genome: Vec<u8>,
    /// The encoded reads.
    pub reads: Vec<Vec<u8>>,
}

impl Workload {
    /// Build the paper's workload for one reference genome: `count` reads
    /// of `read_len` bp with the wgsim default error model, genome scaled
    /// by `scale` relative to the 1:100 sizes of DESIGN.md.
    pub fn paper(g: ReferenceGenome, scale: f64, count: usize, read_len: usize) -> Workload {
        let genome = g.generate_scaled(scale);
        let reads = simulate_reads(&genome, count, read_len, g.seed() ^ 0x5eed);
        Workload {
            name: format!("{} @{scale:.2}", g.name()),
            genome,
            reads,
        }
    }

    /// Index the genome once for this workload.
    pub fn index(&self) -> KMismatchIndex {
        KMismatchIndex::new(self.genome.clone())
    }
}

/// Simulate `count` forward-strand reads with the wgsim default model.
pub fn simulate_reads(genome: &[u8], count: usize, read_len: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut sim = ReadSimulator::new(genome, ReadSimConfig::paper(read_len), seed);
    sim.reads(count).into_iter().map(|r| r.seq).collect()
}

/// Per-query latency percentiles (ns) interpolated from the telemetry
/// `search.latency_ns` histogram accumulated over a timed run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyNs {
    /// Median per-query latency.
    pub p50: f64,
    /// 95th-percentile per-query latency.
    pub p95: f64,
    /// 99th-percentile (tail) per-query latency.
    pub p99: f64,
}

impl LatencyNs {
    /// Harvest the percentiles from a run's recorder.
    fn from_recorder(recorder: &MetricsRecorder) -> LatencyNs {
        match recorder.snapshot().histogram(Hist::SearchLatencyNs) {
            Some(h) => LatencyNs {
                p50: h.percentile(0.50),
                p95: h.percentile(0.95),
                p99: h.percentile(0.99),
            },
            None => LatencyNs::default(),
        }
    }
}

/// The outcome of running one method over a read batch.
#[derive(Debug, Clone)]
pub struct TimedRun {
    /// Method label as in the paper's legends.
    pub method: &'static str,
    /// Total wall-clock seconds over the batch.
    pub seconds: f64,
    /// Total occurrences reported.
    pub occurrences: usize,
    /// Accumulated method counters.
    pub stats: SearchStats,
    /// Per-query latency percentiles over the batch.
    pub latency: LatencyNs,
}

/// Run `method` over every read and time the batch.
pub fn run_method(index: &KMismatchIndex, reads: &[Vec<u8>], k: usize, method: Method) -> TimedRun {
    // Cole needs the suffix tree and the bidirectional search the mirror
    // rank structure; build them outside the timed region, like the
    // paper ("the time for constructing BWT(s̄) is not included").
    if matches!(method, Method::Cole) {
        index.suffix_tree();
    }
    if matches!(method, Method::Bidirectional) {
        index.mirror();
    }
    let recorder = MetricsRecorder::new();
    let start = Instant::now();
    let mut stats = SearchStats::default();
    let mut occurrences = 0usize;
    for r in reads {
        let res = index.search_recorded(r, k, method, &recorder);
        occurrences += res.occurrences.len();
        stats.accumulate(&res.stats);
    }
    TimedRun {
        method: method.label(),
        seconds: start.elapsed().as_secs_f64(),
        occurrences,
        stats,
        latency: LatencyNs::from_recorder(&recorder),
    }
}

/// [`run_method`] across a thread pool: the whole batch is fanned out
/// with [`KMismatchIndex::search_batch_par`] and timed as one unit.
/// Occurrence lists and accumulated stats are bit-identical to the
/// serial run at any thread count; only `seconds` (and the latency
/// percentiles, which measure real per-query wall time) vary.
pub fn run_method_par(
    index: &KMismatchIndex,
    reads: &[Vec<u8>],
    k: usize,
    method: Method,
    pool: &ThreadPool,
) -> TimedRun {
    if matches!(method, Method::Cole) {
        index.suffix_tree();
    }
    if matches!(method, Method::Bidirectional) {
        index.mirror();
    }
    let recorder = MetricsRecorder::new();
    let start = Instant::now();
    let (per_read, stats) = index.search_batch_par_recorded(reads, k, method, pool, &recorder);
    TimedRun {
        method: method.label(),
        seconds: start.elapsed().as_secs_f64(),
        occurrences: per_read.iter().map(Vec::len).sum(),
        stats,
        latency: LatencyNs::from_recorder(&recorder),
    }
}

/// One thread-scaling measurement destined for `BENCH_par.json`.
#[derive(Debug, Clone)]
pub struct ParScalingRecord {
    /// Worker count the batch ran with.
    pub threads: usize,
    /// Number of reads in the batch.
    pub reads: usize,
    /// Read length in bp.
    pub read_len: usize,
    /// Mismatch budget.
    pub k: usize,
    /// Wall-clock seconds for the whole batch.
    pub seconds: f64,
    /// Batch throughput (`reads / seconds`).
    pub reads_per_sec: f64,
    /// Total occurrences reported (thread-count invariant).
    pub occurrences: usize,
    /// Per-query latency percentiles over the batch.
    pub latency: LatencyNs,
}

impl ParScalingRecord {
    /// Measure one batch at one thread count.
    pub fn measure(
        index: &KMismatchIndex,
        reads: &[Vec<u8>],
        read_len: usize,
        k: usize,
        method: Method,
        threads: usize,
    ) -> ParScalingRecord {
        let pool = ThreadPool::new(threads);
        let run = run_method_par(index, reads, k, method, &pool);
        ParScalingRecord {
            threads,
            reads: reads.len(),
            read_len,
            k,
            seconds: run.seconds,
            reads_per_sec: if run.seconds > 0.0 {
                reads.len() as f64 / run.seconds
            } else {
                0.0
            },
            occurrences: run.occurrences,
            latency: run.latency,
        }
    }

    /// Serialise as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("threads", Json::UInt(self.threads as u64)),
            ("reads", Json::UInt(self.reads as u64)),
            ("read_len", Json::UInt(self.read_len as u64)),
            ("k", Json::UInt(self.k as u64)),
            ("seconds", Json::Float(self.seconds)),
            ("reads_per_sec", Json::Float(self.reads_per_sec)),
            ("occurrences", Json::UInt(self.occurrences as u64)),
            ("latency_p50_ns", Json::Float(self.latency.p50)),
            ("latency_p95_ns", Json::Float(self.latency.p95)),
            ("latency_p99_ns", Json::Float(self.latency.p99)),
        ])
    }
}

/// Wrap thread-scaling records in the `BENCH_par.json` envelope.
pub fn par_scaling_document(records: &[ParScalingRecord]) -> Json {
    Json::obj([
        ("schema", Json::Str(BENCH_SCHEMA.to_string())),
        ("experiment", Json::Str("par".to_string())),
        (
            "records",
            Json::Arr(records.iter().map(ParScalingRecord::to_json).collect()),
        ),
    ])
}

/// Write `BENCH_par.json` into `dir` and return its path.
pub fn write_par_scaling_json(
    dir: &Path,
    records: &[ParScalingRecord],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_par.json");
    std::fs::write(&path, par_scaling_document(records).to_pretty())?;
    Ok(path)
}

/// Harvest a deterministic worklist of `count` non-empty SA intervals by
/// random backward descents from the whole range — the interval
/// population a k-mismatch tree search actually expands, spanning the
/// width spectrum from the full range down to singletons.
pub fn occbench_intervals(fm: &FmIndex, count: usize, seed: u64) -> Vec<Interval> {
    let mut state = seed | 1;
    let mut next = move || {
        // splitmix64 step: deterministic, well-mixed, zero-dependency.
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut out = Vec::with_capacity(count);
    let mut iv = fm.whole();
    while out.len() < count {
        out.push(iv);
        let y = (next() % 4) as u8 + 1;
        let child = fm.extend_backward(iv, y);
        // Restart the descent once it dies or narrows to a chain.
        iv = if child.len() < 2 { fm.whole() } else { child };
    }
    out
}

/// Outcome of the occ microbenchmark: one record per mode plus the
/// headline ratio.
#[derive(Debug, Clone)]
pub struct OccBenchOutcome {
    /// `method = "occ"` (four independent `extend_backward` calls, eight
    /// rank lookups) and `method = "occ_all"` (one fused `extend_all`).
    pub records: Vec<BenchRecord>,
    /// Plain-occ seconds over fused seconds: > 1 means `extend_all` wins.
    pub speedup: f64,
}

/// Time full 4-way node expansion over a deterministic interval worklist,
/// once per mode: four `extend_backward` calls against one `extend_all`.
/// Both modes visit identical intervals and their interval checksums are
/// asserted equal, so the comparison cannot silently diverge.
pub fn run_occbench(genome: &[u8], expansions: usize, reps: usize) -> OccBenchOutcome {
    let fm = {
        let mut rev = genome.to_vec();
        rev.reverse();
        rev.push(0);
        FmIndex::new(&rev, FmBuildConfig::default())
    };
    let intervals = occbench_intervals(&fm, expansions, 0x0cc5eed);

    let checksum_occ = |ivs: &[Interval]| -> u64 {
        let mut sum = 0u64;
        for &iv in ivs {
            for y in 1..=4u8 {
                let c = fm.extend_backward(iv, y);
                sum = sum
                    .wrapping_add(c.lo as u64)
                    .wrapping_add((c.hi as u64) << 32);
            }
        }
        sum
    };
    let checksum_all = |ivs: &[Interval]| -> u64 {
        let mut sum = 0u64;
        for &iv in ivs {
            for c in fm.extend_all(iv) {
                sum = sum
                    .wrapping_add(c.lo as u64)
                    .wrapping_add((c.hi as u64) << 32);
            }
        }
        sum
    };

    // Warm both paths (and the cache) once, proving they agree.
    let expect = checksum_occ(&intervals);
    assert_eq!(
        expect,
        checksum_all(&intervals),
        "fused extension diverged from 4x extend_backward"
    );

    let start = Instant::now();
    for _ in 0..reps {
        assert_eq!(checksum_occ(&intervals), expect);
    }
    let occ_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    for _ in 0..reps {
        assert_eq!(checksum_all(&intervals), expect);
    }
    let all_secs = start.elapsed().as_secs_f64();

    let total = (expansions * reps) as u64;
    let occ_stats = SearchStats {
        rank_extensions: total * 4,
        ..Default::default()
    };
    let all_stats = SearchStats {
        rank_extensions: total,
        occ_fused: total,
        ..Default::default()
    };
    let record = |method: &'static str, seconds: f64, stats: SearchStats| BenchRecord {
        method,
        n: genome.len(),
        m: 0,
        k: 0,
        seconds,
        occurrences: total as usize,
        stats,
        latency: LatencyNs::default(),
    };
    OccBenchOutcome {
        records: vec![
            record("occ", occ_secs, occ_stats),
            record("occ_all", all_secs, all_stats),
        ],
        speedup: if all_secs > 0.0 {
            occ_secs / all_secs
        } else {
            0.0
        },
    }
}

/// Outcome of the SIMD-vs-scalar occ kernel microbenchmark.
#[derive(Debug, Clone)]
pub struct KernelBenchOutcome {
    /// One `occ_all_scalar@rR` / `occ_all_simd@rR` record pair per rate.
    pub records: Vec<BenchRecord>,
    /// Scalar seconds over SIMD seconds at the widest rate benched:
    /// > 1 means the vector kernel wins.
    pub speedup: f64,
    /// The kernel the dispatcher picks when nothing is forced
    /// (`"avx2"` or `"scalar"`); on a machine without AVX2 both rows
    /// time the same code and `speedup` hovers at 1.
    pub kernel: &'static str,
}

/// Time fused node expansion with the vector kernel against the forced
/// scalar kernel, across checkpoint rates. Wider rates give the SIMD
/// tally more whole words per lookup (the AVX2 path engages at rate >=
/// 128), so the sweep shows where vectorisation starts paying. Both
/// kernels run the identical worklist and their interval checksums are
/// asserted equal — the bit-identical contract, benched.
pub fn run_occbench_kernels(
    genome: &[u8],
    expansions: usize,
    reps: usize,
    rates: &[usize],
) -> KernelBenchOutcome {
    let label = |rate: usize, simd: bool| -> &'static str {
        match (rate, simd) {
            (64, false) => "occ_all_scalar@r64",
            (64, true) => "occ_all_simd@r64",
            (256, false) => "occ_all_scalar@r256",
            (256, true) => "occ_all_simd@r256",
            (1024, false) => "occ_all_scalar@r1024",
            (1024, true) => "occ_all_simd@r1024",
            (_, false) => "occ_all_scalar",
            (_, true) => "occ_all_simd",
        }
    };
    let mut records = Vec::new();
    let mut speedup = 0.0;
    for &rate in rates {
        let fm = {
            let mut rev = genome.to_vec();
            rev.reverse();
            rev.push(0);
            FmIndex::new(
                &rev,
                FmBuildConfig {
                    occ_rate: rate,
                    ..FmBuildConfig::default()
                },
            )
        };
        let intervals = occbench_intervals(&fm, expansions, 0x0cc5eed);
        let checksum = |ivs: &[Interval]| -> u64 {
            let mut sum = 0u64;
            for &iv in ivs {
                for c in fm.extend_all(iv) {
                    sum = sum
                        .wrapping_add(c.lo as u64)
                        .wrapping_add((c.hi as u64) << 32);
                }
            }
            sum
        };
        // Prove the kernels agree on this worklist before timing them.
        kmm_bwt::force_scalar(true);
        let expect = checksum(&intervals);
        kmm_bwt::force_scalar(false);
        assert_eq!(
            expect,
            checksum(&intervals),
            "SIMD kernel diverged from scalar at rate {rate}"
        );

        let time_kernel = |forced_scalar: bool| -> f64 {
            kmm_bwt::force_scalar(forced_scalar);
            let start = Instant::now();
            for _ in 0..reps {
                assert_eq!(checksum(&intervals), expect);
            }
            let secs = start.elapsed().as_secs_f64();
            kmm_bwt::force_scalar(false);
            secs
        };
        let scalar_secs = time_kernel(true);
        let simd_secs = time_kernel(false);

        let total = (expansions * reps) as u64;
        let stats = SearchStats {
            rank_extensions: total,
            occ_fused: total,
            ..Default::default()
        };
        let record = |method: &'static str, seconds: f64| BenchRecord {
            method,
            n: genome.len(),
            m: rate,
            k: 0,
            seconds,
            occurrences: total as usize,
            stats: stats.clone(),
            latency: LatencyNs::default(),
        };
        records.push(record(label(rate, false), scalar_secs));
        records.push(record(label(rate, true), simd_secs));
        speedup = if simd_secs > 0.0 {
            scalar_secs / simd_secs
        } else {
            0.0
        };
    }
    KernelBenchOutcome {
        records,
        speedup,
        kernel: kmm_bwt::active_kernel(),
    }
}

/// One benchmark measurement destined for a `BENCH_*.json` artifact:
/// the experimental coordinates (method, n, m, k), the wall-clock time
/// and the accumulated [`SearchStats`] counters.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Method label as in the paper's legends.
    pub method: &'static str,
    /// Text (genome) length in bp.
    pub n: usize,
    /// Pattern (read) length in bp.
    pub m: usize,
    /// Mismatch budget.
    pub k: usize,
    /// Total wall-clock seconds over the read batch.
    pub seconds: f64,
    /// Total occurrences reported.
    pub occurrences: usize,
    /// Accumulated method counters.
    pub stats: SearchStats,
    /// Per-query latency percentiles over the batch.
    pub latency: LatencyNs,
}

impl BenchRecord {
    /// Attach experimental coordinates to a [`TimedRun`].
    pub fn from_run(run: &TimedRun, n: usize, m: usize, k: usize) -> BenchRecord {
        BenchRecord {
            method: run.method,
            n,
            m,
            k,
            seconds: run.seconds,
            occurrences: run.occurrences,
            stats: run.stats,
            latency: run.latency,
        }
    }

    /// Serialise as a JSON object; every [`SearchStats`] counter appears
    /// under `stats` by its canonical name.
    pub fn to_json(&self) -> Json {
        let stats = Json::obj(
            self.stats
                .as_pairs()
                .into_iter()
                .map(|(name, value)| (name, Json::UInt(value))),
        );
        Json::obj([
            ("method", Json::Str(self.method.to_string())),
            ("n", Json::UInt(self.n as u64)),
            ("m", Json::UInt(self.m as u64)),
            ("k", Json::UInt(self.k as u64)),
            ("seconds", Json::Float(self.seconds)),
            ("occurrences", Json::UInt(self.occurrences as u64)),
            ("latency_p50_ns", Json::Float(self.latency.p50)),
            ("latency_p95_ns", Json::Float(self.latency.p95)),
            ("latency_p99_ns", Json::Float(self.latency.p99)),
            ("stats", stats),
        ])
    }
}

/// Exact per-structure byte attribution for one built index: the numbers
/// behind `FmIndex::heap_bytes`, split so a layout change (e.g. a rankall
/// checkpoint-rate regression) is visible as growth of the specific
/// structure that paid for it. All fields are deterministic functions of
/// (text, occ_rate, sa_rate), so `kmm bench diff` gates on them exactly
/// like the search counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexAttribution {
    /// Indexed text length (reverse text plus sentinel).
    pub n: usize,
    /// Rankall checkpoint rate the index was built with.
    pub occ_rate: usize,
    /// Suffix-array sampling rate the index was built with.
    pub sa_rate: usize,
    /// Bytes of 2-bit packed `L` payload inside the rank structure.
    pub rank_payload_bytes: usize,
    /// Bytes of per-block checkpoint headers — the price of O(1) rank.
    pub rank_overhead_bytes: usize,
    /// Bytes of the sampled suffix array.
    pub sampled_sa_bytes: usize,
}

impl IndexAttribution {
    /// Measure a built index (`config` being what it was built with).
    pub fn measure(fm: &FmIndex, config: &FmBuildConfig) -> IndexAttribution {
        IndexAttribution {
            n: fm.len(),
            occ_rate: config.occ_rate,
            sa_rate: config.sa_rate,
            rank_payload_bytes: fm.rank_payload_bytes(),
            rank_overhead_bytes: fm.rank_overhead_bytes(),
            sampled_sa_bytes: fm.sampled_sa_bytes(),
        }
    }

    /// Total accounted heap bytes (`FmIndex::heap_bytes`).
    pub fn total_bytes(&self) -> usize {
        self.rank_payload_bytes + self.rank_overhead_bytes + self.sampled_sa_bytes
    }

    /// Serialise as the document-level `index` object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("n", Json::UInt(self.n as u64)),
            ("occ_rate", Json::UInt(self.occ_rate as u64)),
            ("sa_rate", Json::UInt(self.sa_rate as u64)),
            (
                "rank_payload_bytes",
                Json::UInt(self.rank_payload_bytes as u64),
            ),
            (
                "rank_overhead_bytes",
                Json::UInt(self.rank_overhead_bytes as u64),
            ),
            ("sampled_sa_bytes", Json::UInt(self.sampled_sa_bytes as u64)),
            ("total_bytes", Json::UInt(self.total_bytes() as u64)),
        ])
    }
}

/// Wrap records in the `BENCH_*.json` envelope.
pub fn bench_document(experiment: &str, records: &[BenchRecord]) -> Json {
    bench_document_with_index(experiment, records, None)
}

/// [`bench_document`] with an optional document-level `index` object
/// carrying the per-structure byte attribution of the index the records
/// were measured against.
pub fn bench_document_with_index(
    experiment: &str,
    records: &[BenchRecord],
    index: Option<&IndexAttribution>,
) -> Json {
    let mut pairs = vec![
        ("schema", Json::Str(BENCH_SCHEMA.to_string())),
        ("experiment", Json::Str(experiment.to_string())),
    ];
    if let Some(attribution) = index {
        pairs.push(("index", attribution.to_json()));
    }
    pairs.push((
        "records",
        Json::Arr(records.iter().map(BenchRecord::to_json).collect()),
    ));
    Json::obj(pairs)
}

/// The experiment name of the regression-gate workload (and thus its
/// artifact, `BENCH_baseline.json`).
pub const BASELINE_EXPERIMENT: &str = "baseline";

/// Run the fixed regression-gate workload: a small deterministic corpus
/// (C. merolae stand-in at 1:2000 scale, 25 reads of 50 bp from the
/// paper's error model, fixed seeds) searched by every paper method at
/// k = 1 and k = 2.
///
/// Everything except wall-clock is a pure function of `occ_rate`, so two
/// runs of the same binary must produce bit-identical counters and byte
/// attribution — that is what `kmm bench diff --assert-identical` checks,
/// and what `scripts/verify.sh` gates against the committed baseline.
/// `occ_rate` is a parameter (rather than pinned) so the gate itself can
/// be tested by injecting a deliberately regressive layout.
pub fn run_baseline(occ_rate: usize) -> (Vec<BenchRecord>, IndexAttribution) {
    let workload = Workload::paper(ReferenceGenome::CMerolae, 0.05, 25, 50);
    let config = FmBuildConfig {
        occ_rate,
        ..FmBuildConfig::default()
    };
    let index = KMismatchIndex::with_config(workload.genome.clone(), config);
    let attribution = IndexAttribution::measure(index.fm(), &config);
    let mut records = Vec::new();
    for k in [1usize, 2] {
        for method in Method::PAPER_SET {
            let run = run_method(&index, &workload.reads, k, method);
            records.push(BenchRecord::from_run(&run, workload.genome.len(), 50, k));
        }
    }
    (records, attribution)
}

/// Write `BENCH_baseline.json` into `dir` and return its path.
pub fn write_baseline_json(
    dir: &Path,
    records: &[BenchRecord],
    index: &IndexAttribution,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{BASELINE_EXPERIMENT}.json"));
    let doc = bench_document_with_index(BASELINE_EXPERIMENT, records, Some(index));
    std::fs::write(&path, doc.to_pretty())?;
    Ok(path)
}

/// The experiment name of the bidirectional head-to-head workload (and
/// thus its artifact, `BENCH_bidir.json`).
pub const BIDIR_EXPERIMENT: &str = "bidir";

/// Run the bidirectional head-to-head sweep: short reads over a larger
/// C. merolae stand-in, searched at k = 1, 2, 3 by Algorithm A, the
/// plain backward-search S-tree baseline, and the bidirectional scheme
/// search.
///
/// The workload deliberately uses short patterns on a ~100 kbp text:
/// scheme pieces are then short relative to the text, so BWT intervals
/// stay wide after the exact descent and branches survive into the
/// region where the scheme's tightened bounds prune — the regime where
/// the precomputed schemes separate from the pigeonhole fallback. That
/// separation is what makes `KMM_BIDIR_PIGEONHOLE=1` (which forces the
/// fallback) show up as a hard `nodes_visited` regression against the
/// committed artifact; on a tiny corpus with long reads the two
/// schemes tie and the planted-regression stage of verify.sh would be
/// vacuous.
///
/// Mirror construction happens outside every timed region (the paper's
/// protocol: index build time is not charged to the query). Everything
/// except wall-clock is deterministic, so `kmm bench diff
/// --assert-identical` holds between repeat runs, and the committed
/// `BENCH_bidir.json` is a regression gate: the bidirectional win must
/// show up as a hard drop in `rank_blocks_touched` and `nodes_visited`
/// at k = 2 and k = 3, not as a timing delta.
pub fn run_bidir() -> (Vec<BenchRecord>, IndexAttribution) {
    let workload = Workload::paper(ReferenceGenome::CMerolae, 0.6, 25, 12);
    let config = FmBuildConfig::default();
    let index = KMismatchIndex::with_config(workload.genome.clone(), config);
    let attribution = IndexAttribution::measure(index.fm(), &config);
    let mut records = Vec::new();
    for k in [1usize, 2, 3] {
        for method in [
            Method::ALGORITHM_A,
            Method::Bwt { use_phi: true },
            Method::Bidirectional,
        ] {
            let run = run_method(&index, &workload.reads, k, method);
            records.push(BenchRecord::from_run(&run, workload.genome.len(), 12, k));
        }
    }
    (records, attribution)
}

/// Write `BENCH_bidir.json` into `dir` and return its path.
pub fn write_bidir_json(
    dir: &Path,
    records: &[BenchRecord],
    index: &IndexAttribution,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{BIDIR_EXPERIMENT}.json"));
    let doc = bench_document_with_index(BIDIR_EXPERIMENT, records, Some(index));
    std::fs::write(&path, doc.to_pretty())?;
    Ok(path)
}

/// The experiment name of the EXPLAIN depth-profile workload (and thus
/// its artifact, `BENCH_explain.json`).
pub const EXPLAIN_EXPERIMENT: &str = "explain";

/// One aggregated EXPLAIN measurement: a method's deterministic
/// counters plus its depth profile (nodes expanded and branches pruned
/// per DFS depth, split by cause), accumulated over a read batch.
///
/// The depth profile lands under `stats` as flat `dNN.*` keys
/// (`d03.expanded`, `d03.pruned_budget`, ...) so `kmm bench diff` gates
/// per-depth pruning behaviour exactly like any other deterministic
/// counter: a regression that moves prunes to deeper levels — more work
/// before each kill — fails the gate even when totals barely move.
#[derive(Debug, Clone)]
pub struct ExplainBenchRecord {
    /// Method label as in the paper's legends.
    pub method: String,
    /// Text (genome) length in bp.
    pub n: usize,
    /// Pattern (read) length in bp.
    pub m: usize,
    /// Mismatch budget.
    pub k: usize,
    /// Wall-clock seconds over the explained batch (informational).
    pub seconds: f64,
    /// Total occurrences reported.
    pub occurrences: u64,
    /// Deterministic counters: accumulated `SearchStats` pairs followed
    /// by the flattened depth rows.
    pub stats: Vec<(String, u64)>,
}

impl ExplainBenchRecord {
    /// Serialise in the `BENCH_*.json` record shape.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("method", Json::Str(self.method.clone())),
            ("n", Json::UInt(self.n as u64)),
            ("m", Json::UInt(self.m as u64)),
            ("k", Json::UInt(self.k as u64)),
            ("seconds", Json::Float(self.seconds)),
            ("occurrences", Json::UInt(self.occurrences)),
            (
                "stats",
                Json::Obj(
                    self.stats
                        .iter()
                        .map(|(name, v)| (name.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Run the EXPLAIN depth-profile workload: the regression-gate corpus
/// (C. merolae stand-in, fixed seeds) explained read by read, Algorithm
/// A against the S-tree baseline, at every `k` in `ks`.
///
/// Everything except `seconds` is a pure function of the corpus — the
/// explain engine's recorder never reads a clock — so the artifact
/// diffs bit-identically against itself and `scripts/verify.sh` gates
/// it with the same budget as `BENCH_baseline.json`.
pub fn run_explain(ks: &[usize]) -> Vec<ExplainBenchRecord> {
    use kmm_telemetry::PruneCause;
    let workload = Workload::paper(ReferenceGenome::CMerolae, 0.05, 10, 50);
    let index = KMismatchIndex::new(workload.genome.clone());
    let methods = [Method::Bwt { use_phi: true }, Method::ALGORITHM_A];
    let mut out = Vec::new();
    for &k in ks {
        for &method in &methods {
            let start = Instant::now();
            let mut occurrences = 0u64;
            let mut counters: Vec<(String, u64)> = Vec::new();
            // depth -> [expanded, pruned by each cause].
            let mut depths: Vec<[u64; 1 + PruneCause::COUNT]> = Vec::new();
            for read in &workload.reads {
                let report = index.explain(read, k, &[method]);
                let cost = &report.methods[0];
                occurrences += cost.occurrences;
                for &(name, v) in &cost.counters {
                    match counters.iter_mut().find(|(n, _)| n == name) {
                        Some((_, total)) => *total += v,
                        None => counters.push((name.to_string(), v)),
                    }
                }
                for (d, row) in cost.depths.iter().enumerate() {
                    if depths.len() <= d {
                        depths.resize(d + 1, [0; 1 + PruneCause::COUNT]);
                    }
                    depths[d][0] += row.expanded;
                    for cause in PruneCause::ALL {
                        depths[d][1 + cause.index()] += row.pruned[cause.index()];
                    }
                }
            }
            let mut stats = counters;
            for (d, row) in depths.iter().enumerate() {
                stats.push((format!("d{d:02}.expanded"), row[0]));
                for cause in PruneCause::ALL {
                    stats.push((
                        format!("d{d:02}.pruned_{}", cause.name()),
                        row[1 + cause.index()],
                    ));
                }
            }
            out.push(ExplainBenchRecord {
                method: method.label().to_string(),
                n: workload.genome.len(),
                m: 50,
                k,
                seconds: start.elapsed().as_secs_f64(),
                occurrences,
                stats,
            });
        }
    }
    out
}

/// Write `BENCH_explain.json` into `dir` and return its path.
pub fn write_explain_json(dir: &Path, records: &[ExplainBenchRecord]) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{EXPLAIN_EXPERIMENT}.json"));
    let doc = Json::obj([
        ("schema", Json::Str(BENCH_SCHEMA.to_string())),
        ("experiment", Json::Str(EXPLAIN_EXPERIMENT.to_string())),
        (
            "records",
            Json::Arr(records.iter().map(ExplainBenchRecord::to_json).collect()),
        ),
    ]);
    std::fs::write(&path, doc.to_pretty())?;
    Ok(path)
}

/// The experiment name of the serve cold-start workload (and thus its
/// artifact, `BENCH_coldstart.json`).
pub const COLDSTART_EXPERIMENT: &str = "coldstart";

/// One cold-start measurement: open a saved index via one load mode.
///
/// Wall-clock is informational (machine noise); the *deterministic*
/// story is in the byte counters — `io_bytes` equals the file size on
/// the read path and is 0 on the mmap path regardless of index size,
/// which is exactly the "startup does not scale with the index" claim,
/// gateable by `kmm bench diff`.
#[derive(Debug, Clone)]
pub struct ColdStartRecord {
    /// `"open_read"` or `"open_mmap"` (the record's `method` key).
    pub mode: &'static str,
    /// Indexed length (reverse text plus sentinel).
    pub n: usize,
    /// Seconds for `FmIndex::open_path` on a saved file.
    pub seconds: f64,
    /// Size of the index file on disk.
    pub file_bytes: u64,
    /// Bytes read through `read(2)` during the open.
    pub io_bytes: u64,
    /// Bytes mapped (zero-copy) during the open.
    pub bytes_mapped: u64,
    /// Whether the loaded index borrows the mapping (1) or owns copies (0).
    pub borrowed: u64,
}

impl ColdStartRecord {
    /// Serialise in the `BENCH_*.json` record shape (`method`/`n`/`m`/`k`
    /// identity, deterministic counters under `stats`) so `kmm bench
    /// diff` gates the byte counters like any other record.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("method", Json::Str(self.mode.to_string())),
            ("n", Json::UInt(self.n as u64)),
            ("m", Json::UInt(0)),
            ("k", Json::UInt(0)),
            ("seconds", Json::Float(self.seconds)),
            (
                "stats",
                Json::obj([
                    ("load_file_bytes", Json::UInt(self.file_bytes)),
                    ("load_io_bytes", Json::UInt(self.io_bytes)),
                    ("load_bytes_mapped", Json::UInt(self.bytes_mapped)),
                    ("load_borrowed", Json::UInt(self.borrowed)),
                ]),
            ),
        ])
    }
}

/// Measure index cold-start at several corpus scales: save each index to
/// a scratch file, then time `FmIndex::open_path` in read mode and mmap
/// mode (`reps` opens each, best-of). Every open is checked to answer a
/// probe search identically to the just-built index.
pub fn run_coldstart(scales: &[f64], reps: usize) -> std::io::Result<Vec<ColdStartRecord>> {
    let dir = std::env::temp_dir().join(format!("kmm-coldstart-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let mut out = Vec::new();
    for (i, &scale) in scales.iter().enumerate() {
        let genome = ReferenceGenome::CMerolae.generate_scaled(scale);
        let fm = {
            let mut rev = genome.clone();
            rev.reverse();
            rev.push(0);
            FmIndex::new(&rev, FmBuildConfig::default())
        };
        let path = dir.join(format!("coldstart-{i}.idx"));
        let mut w = std::io::BufWriter::new(std::fs::File::create(&path)?);
        fm.save(&mut w)?;
        drop(w);
        let probe = &genome[genome.len() / 2..genome.len() / 2 + 40];
        let expect = fm.backward_search(probe);
        for (mode, prefer_mmap) in [("open_read", false), ("open_mmap", true)] {
            let mut best: Option<(f64, kmm_bwt::OpenStats, bool)> = None;
            for _ in 0..reps.max(1) {
                let start = Instant::now();
                let (opened, stats) = FmIndex::open_path(&path, prefer_mmap)
                    .map_err(|e| std::io::Error::other(e.to_string()))?;
                let secs = start.elapsed().as_secs_f64();
                assert_eq!(opened.backward_search(probe), expect, "{mode} diverged");
                let borrowed = opened.is_borrowed();
                if best.as_ref().is_none_or(|(b, _, _)| secs < *b) {
                    best = Some((secs, stats, borrowed));
                }
            }
            let (seconds, stats, borrowed) = best.unwrap();
            out.push(ColdStartRecord {
                mode,
                n: fm.len(),
                seconds,
                file_bytes: stats.file_bytes,
                io_bytes: stats.io_bytes,
                bytes_mapped: stats.bytes_mapped,
                borrowed: borrowed as u64,
            });
        }
        let _ = std::fs::remove_file(&path);
    }
    let _ = std::fs::remove_dir(&dir);
    Ok(out)
}

/// Write `BENCH_coldstart.json` into `dir` and return its path.
pub fn write_coldstart_json(dir: &Path, records: &[ColdStartRecord]) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{COLDSTART_EXPERIMENT}.json"));
    let doc = Json::obj([
        ("schema", Json::Str(BENCH_SCHEMA.to_string())),
        ("experiment", Json::Str(COLDSTART_EXPERIMENT.to_string())),
        (
            "records",
            Json::Arr(records.iter().map(ColdStartRecord::to_json).collect()),
        ),
    ]);
    std::fs::write(&path, doc.to_pretty())?;
    Ok(path)
}

/// Write `BENCH_<experiment>.json` into `dir` and return its path.
pub fn write_bench_json(
    dir: &Path,
    experiment: &str,
    records: &[BenchRecord],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{experiment}.json"));
    std::fs::write(&path, bench_document(experiment, records).to_pretty())?;
    Ok(path)
}

/// Render rows as a fixed-width text table with a header.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Human-readable second formatting for table cells.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let a = Workload::paper(ReferenceGenome::CMerolae, 0.05, 5, 40);
        let b = Workload::paper(ReferenceGenome::CMerolae, 0.05, 5, 40);
        assert_eq!(a.genome, b.genome);
        assert_eq!(a.reads, b.reads);
        assert_eq!(a.reads.len(), 5);
        assert!(a.reads.iter().all(|r| r.len() == 40));
    }

    #[test]
    fn run_method_counts_occurrences() {
        let w = Workload::paper(ReferenceGenome::CMerolae, 0.02, 4, 30);
        let idx = w.index();
        let run = run_method(&idx, &w.reads, 2, Method::ALGORITHM_A);
        // Every read was sampled from the genome with ~2% errors, so with
        // k = 2 most reads should find their origin.
        assert!(run.occurrences >= 1);
        assert!(run.seconds >= 0.0);
        assert_eq!(run.method, "A(.)");
        // The recorder saw every query, so the percentiles are populated
        // and ordered.
        assert!(run.latency.p50 > 0.0);
        assert!(run.latency.p50 <= run.latency.p95);
        assert!(run.latency.p95 <= run.latency.p99);
        // And the result must match the naive scan.
        let naive = run_method(&idx, &w.reads, 2, Method::Naive);
        assert_eq!(run.occurrences, naive.occurrences);
    }

    #[test]
    fn run_method_par_matches_serial() {
        let w = Workload::paper(ReferenceGenome::CMerolae, 0.02, 6, 30);
        let idx = w.index();
        let serial = run_method(&idx, &w.reads, 2, Method::ALGORITHM_A);
        for threads in [1usize, 2, 4] {
            let pool = ThreadPool::new(threads);
            let par = run_method_par(&idx, &w.reads, 2, Method::ALGORITHM_A, &pool);
            // Only wall-clock may differ across thread counts.
            assert_eq!(par.occurrences, serial.occurrences, "threads={threads}");
            assert_eq!(par.stats, serial.stats, "threads={threads}");
            assert_eq!(par.method, serial.method);
        }
    }

    #[test]
    fn par_scaling_json_artifact_round_trips() {
        let w = Workload::paper(ReferenceGenome::CMerolae, 0.02, 5, 30);
        let idx = w.index();
        let records: Vec<ParScalingRecord> = [1usize, 2]
            .iter()
            .map(|&t| ParScalingRecord::measure(&idx, &w.reads, 30, 2, Method::ALGORITHM_A, t))
            .collect();
        // Occurrence totals are thread-count invariant.
        assert_eq!(records[0].occurrences, records[1].occurrences);
        let dir = std::env::temp_dir().join("kmm-bench-tests");
        let path = write_par_scaling_json(&dir, &records).unwrap();
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            "BENCH_par.json"
        );
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(BENCH_SCHEMA));
        assert_eq!(doc.get("experiment").and_then(Json::as_str), Some("par"));
        let recs = doc.get("records").and_then(Json::as_array).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].get("threads").and_then(Json::as_u64), Some(1));
        assert_eq!(recs[1].get("threads").and_then(Json::as_u64), Some(2));
        for r in recs {
            assert!(r.get("seconds").and_then(Json::as_f64).is_some());
            assert!(r.get("reads_per_sec").and_then(Json::as_f64).is_some());
            assert_eq!(r.get("reads").and_then(Json::as_u64), Some(5));
            assert_eq!(r.get("read_len").and_then(Json::as_u64), Some(30));
            assert_eq!(r.get("k").and_then(Json::as_u64), Some(2));
        }
    }

    #[test]
    fn occbench_is_deterministic_and_self_checking() {
        let genome = ReferenceGenome::CMerolae.generate_scaled(0.01);
        let out = run_occbench(&genome, 200, 2);
        assert_eq!(out.records.len(), 2);
        assert_eq!(out.records[0].method, "occ");
        assert_eq!(out.records[1].method, "occ_all");
        // Both modes expanded the same worklist...
        assert_eq!(out.records[0].occurrences, out.records[1].occurrences);
        assert_eq!(out.records[0].occurrences, 400);
        // ...with the fused mode doing a quarter of the rank extensions.
        assert_eq!(
            out.records[0].stats.rank_extensions,
            4 * out.records[1].stats.rank_extensions
        );
        assert_eq!(out.records[1].stats.occ_fused, 400);
        assert!(out.speedup > 0.0);
        // The interval worklist is reproducible run to run.
        let fm = {
            let mut rev = genome.clone();
            rev.reverse();
            rev.push(0);
            FmIndex::new(&rev, FmBuildConfig::default())
        };
        assert_eq!(
            occbench_intervals(&fm, 50, 7),
            occbench_intervals(&fm, 50, 7)
        );
    }

    #[test]
    fn kernel_bench_sweeps_rates_and_proves_bit_identity() {
        let genome = ReferenceGenome::CMerolae.generate_scaled(0.01);
        let out = run_occbench_kernels(&genome, 100, 1, &[64, 256]);
        // One scalar/simd pair per rate, labelled with the rate.
        assert_eq!(out.records.len(), 4);
        assert_eq!(out.records[0].method, "occ_all_scalar@r64");
        assert_eq!(out.records[1].method, "occ_all_simd@r64");
        assert_eq!(out.records[2].method, "occ_all_scalar@r256");
        assert_eq!(out.records[3].method, "occ_all_simd@r256");
        assert!(out.records.iter().all(|r| r.stats.occ_fused == 100));
        assert!(out.kernel == "avx2" || out.kernel == "scalar");
        assert!(out.speedup > 0.0);
        // The bench must leave the dispatcher unforced for other tests.
        assert_eq!(kmm_bwt::active_kernel(), out.kernel);
    }

    #[test]
    fn coldstart_byte_counters_are_deterministic() {
        let records = run_coldstart(&[0.005], 1).unwrap();
        assert_eq!(records.len(), 2);
        let read = &records[0];
        let mmap = &records[1];
        assert_eq!(read.mode, "open_read");
        assert_eq!(mmap.mode, "open_mmap");
        // Read path: every file byte flows through read(2), nothing maps.
        assert!(read.file_bytes > 0);
        assert_eq!(read.io_bytes, read.file_bytes);
        assert_eq!(read.bytes_mapped, 0);
        // Mmap path (where supported): zero read bytes regardless of
        // index size — the O(1) cold-start claim.
        if mmap.borrowed == 1 {
            assert_eq!(mmap.io_bytes, 0);
            assert_eq!(mmap.bytes_mapped, mmap.file_bytes);
        } else {
            assert_eq!(mmap.io_bytes, mmap.file_bytes);
        }

        let dir = std::env::temp_dir().join("kmm-bench-coldstart-json");
        let path = write_coldstart_json(&dir, &records).unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(BENCH_SCHEMA));
        assert_eq!(
            doc.get("experiment").and_then(Json::as_str),
            Some(COLDSTART_EXPERIMENT)
        );
        // The artifact diffs cleanly against itself under the strictest
        // gate — the counters are deterministic.
        let report = diff::diff_documents(
            &doc,
            &doc,
            &diff::DiffOptions {
                assert_identical: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!report.failed(), "{report}");
        assert!(report.counters_compared >= 8);
    }

    #[test]
    fn table_formatting_aligns() {
        let t = format_table(
            &["k", "time"],
            &[
                vec!["1".into(), "5ms".into()],
                vec!["10".into(), "1.2s".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('k'));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn bench_json_artifact_round_trips() {
        let mut stats = SearchStats::default();
        stats.leaves = 12;
        stats.rank_extensions = 340;
        stats.reuse_hits = 7;
        let records = vec![
            BenchRecord {
                method: "A(.)",
                n: 10_000,
                m: 100,
                k: 5,
                seconds: 0.25,
                occurrences: 42,
                stats,
                latency: LatencyNs {
                    p50: 1000.0,
                    p95: 2000.0,
                    p99: 4000.0,
                },
            },
            BenchRecord {
                method: "BWT [34]",
                n: 10_000,
                m: 100,
                k: 5,
                seconds: 1.5,
                occurrences: 42,
                stats: SearchStats::default(),
                latency: LatencyNs::default(),
            },
        ];
        let dir = std::env::temp_dir().join("kmm-bench-tests");
        let path = write_bench_json(&dir, "fig11", &records).unwrap();
        assert!(path.file_name().unwrap().to_str().unwrap() == "BENCH_fig11.json");

        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(BENCH_SCHEMA));
        assert_eq!(doc.get("experiment").and_then(Json::as_str), Some("fig11"));
        let recs = doc.get("records").and_then(Json::as_array).unwrap();
        assert_eq!(recs.len(), 2);
        let first = &recs[0];
        assert_eq!(first.get("method").and_then(Json::as_str), Some("A(.)"));
        assert_eq!(first.get("n").and_then(Json::as_u64), Some(10_000));
        assert_eq!(first.get("m").and_then(Json::as_u64), Some(100));
        assert_eq!(first.get("k").and_then(Json::as_u64), Some(5));
        assert_eq!(first.get("seconds").and_then(Json::as_f64), Some(0.25));
        assert_eq!(first.get("occurrences").and_then(Json::as_u64), Some(42));
        assert_eq!(
            first.get("latency_p50_ns").and_then(Json::as_f64),
            Some(1000.0)
        );
        assert_eq!(
            first.get("latency_p99_ns").and_then(Json::as_f64),
            Some(4000.0)
        );
        let js = first.get("stats").unwrap();
        // Every SearchStats field survives under its canonical name.
        for (name, value) in stats.as_pairs() {
            assert_eq!(js.get(name).and_then(Json::as_u64), Some(value), "{name}");
        }
    }

    #[test]
    fn bench_record_from_run_attaches_coordinates() {
        let w = Workload::paper(ReferenceGenome::CMerolae, 0.02, 3, 30);
        let idx = w.index();
        let run = run_method(&idx, &w.reads, 1, Method::ALGORITHM_A);
        let rec = BenchRecord::from_run(&run, w.genome.len(), 30, 1);
        assert_eq!(rec.n, w.genome.len());
        assert_eq!(rec.m, 30);
        assert_eq!(rec.k, 1);
        assert_eq!(rec.method, "A(.)");
        assert_eq!(rec.stats, run.stats);
        // And the JSON view is parseable on its own.
        let j = Json::parse(&rec.to_json().to_compact()).unwrap();
        assert_eq!(j.get("k").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn baseline_is_deterministic_and_gateable() {
        let (a, attr_a) = run_baseline(64);
        let (b, attr_b) = run_baseline(64);
        // Same binary, same seeds: the deterministic side is bit-identical.
        assert_eq!(attr_a, attr_b);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), 2 * Method::PAPER_SET.len());
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.method, rb.method);
            assert_eq!((ra.n, ra.m, ra.k), (rb.n, rb.m, rb.k));
            assert_eq!(ra.stats, rb.stats, "{}", ra.method);
            assert_eq!(ra.occurrences, rb.occurrences);
        }
        let doc_a = bench_document_with_index(BASELINE_EXPERIMENT, &a, Some(&attr_a));
        let doc_b = bench_document_with_index(BASELINE_EXPERIMENT, &b, Some(&attr_b));
        let identical = diff::diff_documents(
            &doc_a,
            &doc_b,
            &diff::DiffOptions {
                assert_identical: true,
                fail_on_regress: Some(15.0),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!identical.failed(), "{identical}");

        // Injecting the paper's occ rate (4) makes individual scans
        // cheaper but doubles the checkpoint overhead (the effective
        // span clamps to the 32-slot word grid: 16 B per 32 positions
        // instead of per 64) — the attribution gate must catch it.
        let (c, attr_c) = run_baseline(4);
        assert!(attr_c.rank_overhead_bytes > attr_a.rank_overhead_bytes * 3 / 2);
        let doc_c = bench_document_with_index(BASELINE_EXPERIMENT, &c, Some(&attr_c));
        let gated = diff::diff_documents(
            &doc_a,
            &doc_c,
            &diff::DiffOptions {
                fail_on_regress: Some(15.0),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(gated.failed(), "{gated}");
        assert!(
            gated
                .regressions
                .iter()
                .any(|r| r.contains("index.rank_overhead_bytes")),
            "{gated}"
        );
    }

    #[test]
    fn bidir_beats_both_baselines_and_is_deterministic() {
        let (a, attr_a) = run_bidir();
        let (b, attr_b) = run_bidir();
        // Repeat runs of the same binary are bit-identical on the
        // deterministic side — what --assert-identical enforces.
        assert_eq!(attr_a, attr_b);
        assert_eq!(a.len(), 9, "3 methods x k in 1..=3");
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.method, rb.method);
            assert_eq!(ra.stats, rb.stats, "{}", ra.method);
            assert_eq!(ra.occurrences, rb.occurrences);
        }
        // All three methods agree on the answer set at every budget.
        for k in [1usize, 2, 3] {
            let occ: Vec<usize> = a
                .iter()
                .filter(|r| r.k == k)
                .map(|r| r.occurrences)
                .collect();
            assert!(occ.windows(2).all(|w| w[0] == w[1]), "k={k}: {occ:?}");
        }
        // The headline claim of the experiment: at k = 2 and k = 3 the
        // scheme-driven bidirectional search touches strictly fewer
        // rank blocks and expands strictly fewer tree nodes than both
        // Algorithm A and the plain backward-search S-tree.
        let get = |k: usize, label: &str| {
            a.iter()
                .find(|r| r.k == k && r.method == label)
                .unwrap_or_else(|| panic!("missing {label} at k={k}"))
        };
        for k in [2usize, 3] {
            let bd = get(k, "Bidir");
            for base in ["A(.)", "BWT"] {
                let other = get(k, base);
                assert!(
                    bd.stats.rank_blocks_touched < other.stats.rank_blocks_touched,
                    "k={k} rank blocks: Bidir {} !< {base} {}",
                    bd.stats.rank_blocks_touched,
                    other.stats.rank_blocks_touched
                );
                assert!(
                    bd.stats.nodes_visited < other.stats.nodes_visited,
                    "k={k} nodes: Bidir {} !< {base} {}",
                    bd.stats.nodes_visited,
                    other.stats.nodes_visited
                );
            }
        }
    }

    #[test]
    fn baseline_json_artifact_has_index_attribution() {
        let (records, attr) = run_baseline(64);
        let dir = std::env::temp_dir().join("kmm-bench-tests");
        let path = write_baseline_json(&dir, &records, &attr).unwrap();
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            "BENCH_baseline.json"
        );
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(BENCH_SCHEMA));
        assert_eq!(
            doc.get("experiment").and_then(Json::as_str),
            Some(BASELINE_EXPERIMENT)
        );
        let index = doc.get("index").unwrap();
        assert_eq!(
            index.get("rank_overhead_bytes").and_then(Json::as_u64),
            Some(attr.rank_overhead_bytes as u64)
        );
        assert_eq!(
            index.get("total_bytes").and_then(Json::as_u64),
            Some(attr.total_bytes() as u64)
        );
        // The deterministic cost counters ride along in every record.
        let recs = doc.get("records").and_then(Json::as_array).unwrap();
        let stats = recs[0].get("stats").unwrap();
        assert!(stats
            .get("rank_blocks_touched")
            .and_then(Json::as_u64)
            .is_some());
    }

    #[test]
    fn explain_bench_is_deterministic_and_gateable() {
        let a = run_explain(&[1]);
        let b = run_explain(&[1]);
        // BWT and Algorithm A, one record each.
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].method, "BWT");
        assert_eq!(a[1].method, "A(.)");
        // Both methods see the same matches on the same corpus.
        assert_eq!(a[0].occurrences, a[1].occurrences);
        // The depth profile is present and flattened under dNN.* keys.
        for rec in &a {
            assert!(
                rec.stats.iter().any(|(n, _)| n == "d01.expanded"),
                "{}: no depth rows in {:?}",
                rec.method,
                rec.stats.iter().map(|(n, _)| n).collect::<Vec<_>>()
            );
            assert!(rec
                .stats
                .iter()
                .any(|(n, v)| n.ends_with(".pruned_budget") && *v > 0));
            // The depth identity the explain engine pins: summed
            // expansions match the visited-node counter (Algorithm A's
            // virtual root expands once per read outside the counter).
            let expanded: u64 = rec
                .stats
                .iter()
                .filter(|(n, _)| n.ends_with(".expanded"))
                .map(|&(_, v)| v)
                .sum();
            let visited = rec
                .stats
                .iter()
                .find(|(n, _)| n == "nodes_visited")
                .map(|&(_, v)| v)
                .unwrap();
            let reads = 10;
            assert!(
                expanded == visited || expanded == visited + reads,
                "{}: expanded {expanded} vs visited {visited}",
                rec.method
            );
        }
        // Bit-identical across runs, and the artifact gates cleanly.
        let dir = std::env::temp_dir().join("kmm-bench-explain-json");
        let doc_a = {
            let path = write_explain_json(&dir, &a).unwrap();
            assert_eq!(
                path.file_name().unwrap().to_str().unwrap(),
                "BENCH_explain.json"
            );
            Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap()
        };
        let doc_b = {
            let path = write_explain_json(&dir, &b).unwrap();
            Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap()
        };
        let report = diff::diff_documents(
            &doc_a,
            &doc_b,
            &diff::DiffOptions {
                assert_identical: true,
                fail_on_regress: Some(15.0),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!report.failed(), "{report}");
        // Every depth row contributes gated counters.
        assert!(
            report.counters_compared > 40,
            "{}",
            report.counters_compared
        );
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_secs(0.0025), "2.50ms");
        assert_eq!(fmt_secs(0.0000025), "2.5us");
    }
}
