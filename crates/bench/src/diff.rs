//! `kmm bench diff`: compare two `BENCH_*.json` artifacts.
//!
//! The comparison separates two kinds of quantities:
//!
//! * **Deterministic counters** — every [`SearchStats`] field except
//!   `timeouts` (which depends on wall-clock deadlines), plus the
//!   per-structure index byte attribution. These are pure functions of
//!   (corpus, pattern set, k, method, index layout): two runs of the same
//!   baseline must agree bit for bit, and any increase is a real
//!   algorithmic or layout regression, not noise.
//! * **Timing** — `seconds` and the latency percentiles. Reported always,
//!   but only gated when explicitly requested (`--fail-on-time-regress`),
//!   because wall-clock varies with the machine and its load.
//!
//! [`SearchStats`]: kmm_core::SearchStats

use std::fmt;

use kmm_telemetry::Json;

use crate::BENCH_SCHEMA;

/// Stats keys excluded from the deterministic gate: they depend on
/// wall-clock (deadline truncation), not on the work performed.
pub const NONDETERMINISTIC_STATS: &[&str] = &["timeouts"];

/// How `diff_documents` decides failure.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiffOptions {
    /// Fail when any deterministic counter (or index byte attribution)
    /// grows by more than this percentage.
    pub fail_on_regress: Option<f64>,
    /// Fail when any record's `seconds` grows by more than this
    /// percentage. Off by default: timing is machine-dependent.
    pub fail_on_time_regress: Option<f64>,
    /// Fail on *any* deterministic delta, in either direction — the
    /// repeat-run check: same corpus, same seed, same binary must
    /// produce identical counters.
    pub assert_identical: bool,
}

/// One deterministic counter that changed between the two documents.
#[derive(Debug, Clone)]
pub struct CounterDelta {
    /// Which record the counter belongs to, e.g. `A(.) n=50000 m=50 k=2`.
    pub record: String,
    /// Canonical counter name (a `SearchStats` key or `index.<field>`).
    pub name: String,
    /// Value in the first (baseline) document.
    pub before: u64,
    /// Value in the second (candidate) document.
    pub after: u64,
}

impl CounterDelta {
    /// Relative change in percent; `+inf` when growing from zero.
    pub fn pct(&self) -> f64 {
        if self.before == self.after {
            0.0
        } else if self.before == 0 {
            f64::INFINITY
        } else {
            (self.after as f64 - self.before as f64) / self.before as f64 * 100.0
        }
    }
}

/// Per-record wall-clock comparison (informational unless gated).
#[derive(Debug, Clone)]
pub struct TimeDelta {
    /// Which record, e.g. `A(.) n=50000 m=50 k=2`.
    pub record: String,
    /// Baseline seconds.
    pub before: f64,
    /// Candidate seconds.
    pub after: f64,
}

impl TimeDelta {
    /// Relative change in percent (positive = slower).
    pub fn pct(&self) -> f64 {
        if self.before > 0.0 {
            (self.after - self.before) / self.before * 100.0
        } else {
            0.0
        }
    }
}

/// The full outcome of comparing two bench documents.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Records present in both documents (matched on method/n/m/k).
    pub records_compared: usize,
    /// Deterministic counters compared across those records.
    pub counters_compared: usize,
    /// Every deterministic counter whose value changed.
    pub changed: Vec<CounterDelta>,
    /// Per-record timing comparison (every matched record).
    pub timing: Vec<TimeDelta>,
    /// Record keys present only in the baseline document.
    pub only_in_baseline: Vec<String>,
    /// Record keys present only in the candidate document.
    pub only_in_candidate: Vec<String>,
    /// Human-readable explanations of every gate violation.
    pub regressions: Vec<String>,
}

impl DiffReport {
    /// True when at least one gate fired — the CLI exits nonzero.
    pub fn failed(&self) -> bool {
        !self.regressions.is_empty()
    }

    /// The sorted, deduplicated names of every deterministic counter
    /// that changed. A failed `--assert-identical` run over hundreds of
    /// records can produce a wall of per-record mismatch lines; this is
    /// the compact signature of *which counters* moved, printed with
    /// the verdict so the offender set is readable at a glance.
    pub fn offending_counters(&self) -> Vec<String> {
        let mut names: Vec<String> = self.changed.iter().map(|d| d.name.clone()).collect();
        names.sort_unstable();
        names.dedup();
        names
    }
}

impl fmt::Display for DiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "compared {} records, {} deterministic counters",
            self.records_compared, self.counters_compared
        )?;
        for key in &self.only_in_baseline {
            writeln!(f, "  only in baseline:  {key}")?;
        }
        for key in &self.only_in_candidate {
            writeln!(f, "  only in candidate: {key}")?;
        }
        if self.changed.is_empty() {
            writeln!(f, "deterministic counters: identical")?;
        } else {
            writeln!(f, "deterministic deltas ({}):", self.changed.len())?;
            for d in &self.changed {
                let pct = d.pct();
                let pct = if pct.is_infinite() {
                    "+inf%".to_string()
                } else {
                    format!("{pct:+.1}%")
                };
                writeln!(
                    f,
                    "  {:<40} {:<24} {} -> {}  ({})",
                    d.record, d.name, d.before, d.after, pct
                )?;
            }
        }
        // Timing is always informational; print only meaningful movement
        // to keep repeat runs quiet.
        let moved: Vec<&TimeDelta> = self
            .timing
            .iter()
            .filter(|t| t.pct().abs() >= 5.0)
            .collect();
        if !moved.is_empty() {
            writeln!(f, "timing (>=5% movement, informational):")?;
            for t in moved {
                writeln!(
                    f,
                    "  {:<40} {:.4}s -> {:.4}s  ({:+.1}%)",
                    t.record,
                    t.before,
                    t.after,
                    t.pct()
                )?;
            }
        }
        for r in &self.regressions {
            writeln!(f, "REGRESSION: {r}")?;
        }
        if self.regressions.is_empty() {
            writeln!(f, "PASS")?;
        } else {
            if !self.changed.is_empty() {
                writeln!(
                    f,
                    "offending counters: {}",
                    self.offending_counters().join(", ")
                )?;
            }
            writeln!(f, "FAIL ({} regressions)", self.regressions.len())?;
        }
        Ok(())
    }
}

/// A record's identity inside a bench document. Duplicate coordinates
/// (fig11a and fig11b both measure m=100, k=5) are disambiguated by an
/// occurrence ordinal so nothing is silently dropped.
fn record_key(rec: &Json, ordinal: usize) -> String {
    let method = rec.get("method").and_then(Json::as_str).unwrap_or("?");
    let n = rec.get("n").and_then(Json::as_u64).unwrap_or(0);
    let m = rec.get("m").and_then(Json::as_u64).unwrap_or(0);
    let k = rec.get("k").and_then(Json::as_u64).unwrap_or(0);
    if ordinal == 0 {
        format!("{method} n={n} m={m} k={k}")
    } else {
        format!("{method} n={n} m={m} k={k} #{}", ordinal + 1)
    }
}

/// Flatten a document's records into `(key, record)` pairs in order.
fn keyed_records(doc: &Json) -> Result<Vec<(String, &Json)>, String> {
    let records = doc
        .get("records")
        .and_then(Json::as_array)
        .ok_or_else(|| "document has no `records` array".to_string())?;
    let mut seen: Vec<(String, usize)> = Vec::new();
    let mut out = Vec::with_capacity(records.len());
    for rec in records {
        let base = record_key(rec, 0);
        let ordinal = match seen.iter_mut().find(|(k, _)| *k == base) {
            Some((_, count)) => {
                *count += 1;
                *count - 1
            }
            None => {
                seen.push((base.clone(), 1));
                0
            }
        };
        out.push((record_key(rec, ordinal), rec));
    }
    Ok(out)
}

/// The deterministic counters of one record: every `stats` entry except
/// the nondeterministic exclusions, in document order.
fn deterministic_stats(rec: &Json) -> Vec<(String, u64)> {
    let Some(stats) = rec.get("stats").and_then(Json::as_object) else {
        return Vec::new();
    };
    stats
        .iter()
        .filter(|(name, _)| !NONDETERMINISTIC_STATS.contains(&name.as_str()))
        .filter_map(|(name, v)| v.as_u64().map(|v| (name.clone(), v)))
        .collect()
}

/// The index byte-attribution entries of a document, as `index.<field>`
/// counters (empty when the document predates the attribution section).
fn index_counters(doc: &Json) -> Vec<(String, u64)> {
    let Some(index) = doc.get("index").and_then(Json::as_object) else {
        return Vec::new();
    };
    index
        .iter()
        .filter_map(|(name, v)| v.as_u64().map(|v| (format!("index.{name}"), v)))
        .collect()
}

/// Check the envelope of one parsed document.
fn validate(doc: &Json, which: &str) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == BENCH_SCHEMA => Ok(()),
        Some(s) => Err(format!("{which}: schema `{s}` is not `{BENCH_SCHEMA}`")),
        None => Err(format!("{which}: missing `schema` tag")),
    }
}

/// Compare two parsed bench documents under `opts`.
///
/// `baseline` is the reference (the committed `BENCH_baseline.json`);
/// `candidate` is the fresh run being judged.
pub fn diff_documents(
    baseline: &Json,
    candidate: &Json,
    opts: &DiffOptions,
) -> Result<DiffReport, String> {
    validate(baseline, "baseline")?;
    validate(candidate, "candidate")?;
    let base_recs = keyed_records(baseline)?;
    let cand_recs = keyed_records(candidate)?;
    let mut report = DiffReport::default();

    for (key, _) in &base_recs {
        if !cand_recs.iter().any(|(k, _)| k == key) {
            report.only_in_baseline.push(key.clone());
        }
    }
    for (key, _) in &cand_recs {
        if !base_recs.iter().any(|(k, _)| k == key) {
            report.only_in_candidate.push(key.clone());
        }
    }
    // A record disappearing from the candidate means the experiment no
    // longer measures what the baseline pinned down.
    if opts.assert_identical || opts.fail_on_regress.is_some() {
        for key in &report.only_in_baseline {
            report
                .regressions
                .push(format!("record `{key}` missing from candidate"));
        }
    }

    let gate = |report: &mut DiffReport, delta: &CounterDelta| {
        if opts.assert_identical && delta.before != delta.after {
            report.regressions.push(format!(
                "{} / {}: {} != {} (identical run expected)",
                delta.record, delta.name, delta.before, delta.after
            ));
            return;
        }
        if let Some(pct) = opts.fail_on_regress {
            if delta.after > delta.before && delta.pct() > pct {
                report.regressions.push(format!(
                    "{} / {}: {} -> {} exceeds +{pct}% budget",
                    delta.record, delta.name, delta.before, delta.after
                ));
            }
        }
    };

    for (key, base_rec) in &base_recs {
        let Some((_, cand_rec)) = cand_recs.iter().find(|(k, _)| k == key) else {
            continue;
        };
        report.records_compared += 1;

        let base_stats = deterministic_stats(base_rec);
        let cand_stats = deterministic_stats(cand_rec);
        for (name, before) in &base_stats {
            let after = cand_stats
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap_or(0);
            report.counters_compared += 1;
            let delta = CounterDelta {
                record: key.clone(),
                name: name.clone(),
                before: *before,
                after,
            };
            gate(&mut report, &delta);
            if delta.before != delta.after {
                report.changed.push(delta);
            }
        }
        // Counters the baseline predates are compared against zero, so a
        // schema extension surfaces as a (gated) growth rather than
        // vanishing silently.
        for (name, after) in &cand_stats {
            if !base_stats.iter().any(|(n, _)| n == name) {
                report.counters_compared += 1;
                let delta = CounterDelta {
                    record: key.clone(),
                    name: name.clone(),
                    before: 0,
                    after: *after,
                };
                gate(&mut report, &delta);
                if delta.after != 0 {
                    report.changed.push(delta);
                }
            }
        }

        let before = base_rec
            .get("seconds")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        let after = cand_rec
            .get("seconds")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        let t = TimeDelta {
            record: key.clone(),
            before,
            after,
        };
        if let Some(pct) = opts.fail_on_time_regress {
            if t.pct() > pct {
                report.regressions.push(format!(
                    "{key} / seconds: {before:.4}s -> {after:.4}s exceeds +{pct}% budget"
                ));
            }
        }
        report.timing.push(t);
    }

    // Index byte attribution: document-level deterministic counters.
    let base_index = index_counters(baseline);
    let cand_index = index_counters(candidate);
    for (name, before) in &base_index {
        let after = cand_index
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0);
        report.counters_compared += 1;
        let delta = CounterDelta {
            record: "(index)".to_string(),
            name: name.clone(),
            before: *before,
            after,
        };
        gate(&mut report, &delta);
        if delta.before != delta.after {
            report.changed.push(delta);
        }
    }
    for (name, after) in &cand_index {
        if !base_index.iter().any(|(n, _)| n == name) {
            report.counters_compared += 1;
            let delta = CounterDelta {
                record: "(index)".to_string(),
                name: name.clone(),
                before: 0,
                after: *after,
            };
            gate(&mut report, &delta);
            if delta.after != 0 {
                report.changed.push(delta);
            }
        }
    }

    Ok(report)
}

/// Parse one bench artifact's text.
pub fn parse_bench_doc(text: &str, which: &str) -> Result<Json, String> {
    Json::parse(text).map_err(|e| format!("{which}: not valid JSON: {e:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bench_document_with_index, BenchRecord, IndexAttribution, LatencyNs};
    use kmm_core::SearchStats;

    fn record(method: &'static str, k: usize, rank_blocks: u64, secs: f64) -> BenchRecord {
        BenchRecord {
            method,
            n: 1000,
            m: 50,
            k,
            seconds: secs,
            occurrences: 7,
            stats: SearchStats {
                rank_blocks_touched: rank_blocks,
                rank_extensions: 40,
                occurrences: 7,
                timeouts: 1,
                ..Default::default()
            },
            latency: LatencyNs::default(),
        }
    }

    fn attribution(overhead: usize) -> IndexAttribution {
        IndexAttribution {
            n: 1000,
            occ_rate: 64,
            sa_rate: 16,
            rank_payload_bytes: 256,
            rank_overhead_bytes: overhead,
            sampled_sa_bytes: 260,
        }
    }

    fn doc(rank_blocks: u64, secs: f64, overhead: usize) -> Json {
        let records = vec![record("A(.)", 2, rank_blocks, secs)];
        bench_document_with_index("baseline", &records, Some(&attribution(overhead)))
    }

    #[test]
    fn identical_documents_pass_assert_identical() {
        let a = doc(100, 0.5, 64);
        let b = doc(100, 0.9, 64); // timing may differ freely
        let report = diff_documents(
            &a,
            &b,
            &DiffOptions {
                assert_identical: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!report.failed(), "{report}");
        assert!(report.changed.is_empty());
        assert_eq!(report.records_compared, 1);
        assert!(
            report.counters_compared > 16,
            "{}",
            report.counters_compared
        );
    }

    #[test]
    fn counter_growth_beyond_budget_fails() {
        let a = doc(100, 0.5, 64);
        let b = doc(130, 0.5, 64); // +30%
        let opts = DiffOptions {
            fail_on_regress: Some(15.0),
            ..Default::default()
        };
        let report = diff_documents(&a, &b, &opts).unwrap();
        assert!(report.failed());
        assert!(report.regressions[0].contains("rank_blocks_touched"));
        // Within budget: passes but still reported as changed.
        let c = doc(110, 0.5, 64); // +10%
        let report = diff_documents(&a, &c, &opts).unwrap();
        assert!(!report.failed(), "{report}");
        assert_eq!(report.changed.len(), 1);
    }

    #[test]
    fn counter_improvement_never_fails_the_pct_gate() {
        let a = doc(100, 0.5, 64);
        let b = doc(10, 0.5, 64); // -90%: an improvement
        let report = diff_documents(
            &a,
            &b,
            &DiffOptions {
                fail_on_regress: Some(15.0),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!report.failed(), "{report}");
        assert_eq!(report.changed.len(), 1);
    }

    #[test]
    fn index_attribution_growth_is_gated() {
        let a = doc(100, 0.5, 64);
        let b = doc(100, 0.5, 1024); // 16x block overhead (occ rate 4)
        let report = diff_documents(
            &a,
            &b,
            &DiffOptions {
                fail_on_regress: Some(15.0),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(report.failed());
        assert!(
            report
                .regressions
                .iter()
                .any(|r| r.contains("index.rank_overhead_bytes")),
            "{report}"
        );
    }

    #[test]
    fn timeouts_are_not_gated() {
        let mut rec_a = record("A(.)", 2, 100, 0.5);
        rec_a.stats.timeouts = 0;
        let mut rec_b = record("A(.)", 2, 100, 0.5);
        rec_b.stats.timeouts = 5;
        let a = bench_document_with_index("baseline", &[rec_a], None);
        let b = bench_document_with_index("baseline", &[rec_b], None);
        let report = diff_documents(
            &a,
            &b,
            &DiffOptions {
                assert_identical: true,
                fail_on_regress: Some(0.0),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!report.failed(), "{report}");
    }

    #[test]
    fn timing_gate_is_opt_in() {
        let a = doc(100, 0.1, 64);
        let b = doc(100, 10.0, 64); // 100x slower
        let silent = diff_documents(
            &a,
            &b,
            &DiffOptions {
                fail_on_regress: Some(15.0),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!silent.failed(), "{silent}");
        let gated = diff_documents(
            &a,
            &b,
            &DiffOptions {
                fail_on_time_regress: Some(50.0),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(gated.failed());
        assert!(gated.regressions[0].contains("seconds"));
    }

    #[test]
    fn missing_record_is_a_regression() {
        let a = bench_document_with_index(
            "baseline",
            &[record("A(.)", 2, 100, 0.5), record("BWT [34]", 2, 90, 0.5)],
            None,
        );
        let b = bench_document_with_index("baseline", &[record("A(.)", 2, 100, 0.5)], None);
        let report = diff_documents(
            &a,
            &b,
            &DiffOptions {
                fail_on_regress: Some(15.0),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(report.failed());
        assert_eq!(report.only_in_baseline.len(), 1);
        assert!(report.regressions[0].contains("BWT [34]"));
    }

    #[test]
    fn duplicate_coordinates_are_disambiguated() {
        let a = bench_document_with_index(
            "fig11",
            &[record("A(.)", 5, 100, 0.5), record("A(.)", 5, 200, 0.5)],
            None,
        );
        let b = bench_document_with_index(
            "fig11",
            &[record("A(.)", 5, 100, 0.5), record("A(.)", 5, 200, 0.5)],
            None,
        );
        let report = diff_documents(
            &a,
            &b,
            &DiffOptions {
                assert_identical: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.records_compared, 2);
        assert!(!report.failed(), "{report}");
    }

    #[test]
    fn assert_identical_failure_lists_every_offending_counter_once() {
        // Two records, each differing on the same two counters: the
        // per-record mismatch lines repeat, but the offender summary
        // names each counter exactly once.
        let mut a1 = record("A(.)", 2, 100, 0.5);
        let mut a2 = record("BWT", 2, 90, 0.5);
        a1.stats.nodes_visited = 10;
        a2.stats.nodes_visited = 20;
        let mut b1 = a1.clone();
        let mut b2 = a2.clone();
        b1.stats.rank_blocks_touched += 1;
        b1.stats.nodes_visited += 3;
        b2.stats.rank_blocks_touched += 2;
        b2.stats.nodes_visited += 4;
        let a = bench_document_with_index("baseline", &[a1, a2], None);
        let b = bench_document_with_index("baseline", &[b1, b2], None);
        let report = diff_documents(
            &a,
            &b,
            &DiffOptions {
                assert_identical: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(report.failed());
        assert_eq!(report.regressions.len(), 4, "{report}");
        assert_eq!(
            report.offending_counters(),
            vec![
                "nodes_visited".to_string(),
                "rank_blocks_touched".to_string()
            ]
        );
        let rendered = report.to_string();
        assert!(
            rendered.contains("offending counters: nodes_visited, rank_blocks_touched"),
            "{rendered}"
        );
        // A passing report stays quiet about offenders.
        let pass = diff_documents(
            &a,
            &a,
            &DiffOptions {
                assert_identical: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!pass.to_string().contains("offending"), "{pass}");
    }

    #[test]
    fn schema_mismatch_is_an_error() {
        let bogus = Json::obj([("schema", Json::Str("other/v9".into()))]);
        let good = doc(1, 0.1, 64);
        assert!(diff_documents(&bogus, &good, &DiffOptions::default()).is_err());
        assert!(diff_documents(&good, &bogus, &DiffOptions::default()).is_err());
    }

    #[test]
    fn report_renders_verdict() {
        let a = doc(100, 0.5, 64);
        let b = doc(130, 0.5, 64);
        let opts = DiffOptions {
            fail_on_regress: Some(15.0),
            ..Default::default()
        };
        let fail = format!("{}", diff_documents(&a, &b, &opts).unwrap());
        assert!(fail.contains("FAIL"), "{fail}");
        assert!(fail.contains("rank_blocks_touched"));
        let pass = format!("{}", diff_documents(&a, &a, &opts).unwrap());
        assert!(pass.contains("PASS"), "{pass}");
        assert!(pass.contains("identical"));
    }
}
