//! Regenerate the paper's tables and figures (Section V) as text output.
//!
//! ```text
//! experiments <command> [--scale F] [--reads N] [--read-len L]
//!             [--out-dir DIR]
//!
//! commands:
//!   table1    genome characteristics (paper Table 1)
//!   fig11a    avg time vs k, four methods (paper Fig. 11(a))
//!   fig11b    avg time vs read length, k = 5 (paper Fig. 11(b))
//!   table2    M-tree leaf counts n' (paper Table 2)
//!   fig12     per-genome comparison at k = 5 (reconstructed Fig. 12)
//!   ablation  rankall rate + reuse/φ ablations (DESIGN.md A1/A2)
//!   parscale  batch-search throughput vs worker count (thread scaling)
//!   occbench  fused occ_all vs 4x extend_backward node expansion,
//!             plus the SIMD-vs-scalar occ kernel sweep across rates
//!   coldstart index open time, read vs mmap -> BENCH_coldstart.json
//!   baseline  fixed regression-gate workload -> BENCH_baseline.json
//!   bidir     bidirectional scheme search vs A(.) and plain backward
//!             search at k = 1..3 -> BENCH_bidir.json (gated)
//!   explain   depth-profile attribution, A(.) vs BWT at k = 1..3
//!             -> BENCH_explain.json (per-depth pruned counts, gated)
//!   servesoak drive a live `kmm serve` daemon over TCP: keep-alive
//!             reuse, per-tenant 429s, connection-cap sheds
//!             -> BENCH_serve.json (structural counters, gated)
//!   all       everything above (except coldstart, baseline, explain,
//!             servesoak)
//! ```
//!
//! `--scale` scales every genome relative to the 1:100 sizes of DESIGN.md
//! (default 0.1, i.e. 1:1000 of the real assemblies — a laptop-friendly
//! regime; use `--scale 1.0` to run at the full scaled sizes).
//!
//! `--threads N` (or `-j N`) caps the widest worker count swept by
//! `parscale` (default: 8); the sweep always starts at 1 thread.
//!
//! `--out-dir DIR` additionally writes the measurements behind the
//! printed tables as machine-readable `BENCH_fig11.json`,
//! `BENCH_table2.json`, `BENCH_fig12.json`, `BENCH_par.json` and
//! `BENCH_occ.json` artifacts (method, n, m, k, wall-time, and every `SearchStats`
//! counter per record; threads and throughput for `parscale`).

use std::path::PathBuf;

use kmm_bench::{
    fmt_secs, format_table, run_baseline, run_bidir, run_coldstart, run_explain, run_method,
    run_occbench, run_occbench_kernels, run_servesoak, simulate_reads, write_baseline_json,
    write_bench_json, write_bidir_json, write_coldstart_json, write_explain_json,
    write_par_scaling_json, write_serve_json, BenchRecord, ParScalingRecord, Workload,
};
use kmm_bwt::FmBuildConfig;
use kmm_core::{KMismatchIndex, Method};
use kmm_dna::genome::ReferenceGenome;
use kmm_telemetry::alloc::fmt_bytes;

#[derive(Debug, Clone)]
struct Opts {
    scale: f64,
    reads: usize,
    read_len: usize,
    threads: usize,
    out_dir: Option<PathBuf>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            scale: 0.1,
            reads: 50,
            read_len: 100,
            threads: 8,
            out_dir: None,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = String::from("all");
    let mut opts = Opts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => opts.scale = it.next().expect("--scale F").parse().expect("bad scale"),
            "--reads" => opts.reads = it.next().expect("--reads N").parse().expect("bad reads"),
            "--read-len" => {
                opts.read_len = it
                    .next()
                    .expect("--read-len L")
                    .parse()
                    .expect("bad read len")
            }
            "--threads" | "-j" => {
                let v = it.next().expect("--threads N");
                opts.threads = match v.parse::<usize>() {
                    Ok(0) | Err(_) => {
                        panic!("bad value for --threads: '{v}' (expected a positive integer)")
                    }
                    Ok(n) => n,
                };
            }
            "--out-dir" => opts.out_dir = Some(PathBuf::from(it.next().expect("--out-dir DIR"))),
            "--help" | "-h" => {
                println!("usage: experiments [table1|fig11a|fig11b|table2|fig12|ablation|parscale|occbench|coldstart|baseline|bidir|explain|servesoak|all] [--scale F] [--reads N] [--read-len L] [--threads N] [--out-dir DIR]");
                return;
            }
            c if !c.starts_with('-') => command = c.to_string(),
            other => panic!("unknown flag {other}"),
        }
    }
    // (experiment name, records) pairs destined for BENCH_<name>.json.
    let mut artifacts: Vec<(&str, Vec<BenchRecord>)> = Vec::new();
    let mut par_records: Vec<ParScalingRecord> = Vec::new();
    match command.as_str() {
        "table1" => table1(&opts),
        "fig11a" => artifacts.push(("fig11", fig11a(&opts))),
        "fig11b" => artifacts.push(("fig11", fig11b(&opts))),
        "table2" => artifacts.push(("table2", table2(&opts))),
        "fig12" => artifacts.push(("fig12", fig12(&opts))),
        "ablation" => ablation(&opts),
        "extended" => extended(&opts),
        "parscale" => par_records = parscale(&opts),
        "occbench" => artifacts.push(("occ", occbench(&opts))),
        "coldstart" => coldstart(&opts),
        "baseline" => baseline(&opts),
        "bidir" => bidir(&opts),
        "explain" => explain(&opts),
        "servesoak" => servesoak(&opts),
        "all" => {
            table1(&opts);
            let mut fig11 = fig11a(&opts);
            fig11.extend(fig11b(&opts));
            artifacts.push(("fig11", fig11));
            artifacts.push(("table2", table2(&opts)));
            artifacts.push(("fig12", fig12(&opts)));
            ablation(&opts);
            extended(&opts);
            par_records = parscale(&opts);
            artifacts.push(("occ", occbench(&opts)));
        }
        other => panic!("unknown command {other}"),
    }
    if let Some(dir) = &opts.out_dir {
        for (experiment, records) in &artifacts {
            let path = write_bench_json(dir, experiment, records)
                .unwrap_or_else(|e| panic!("writing BENCH_{experiment}.json: {e}"));
            eprintln!("wrote {} ({} records)", path.display(), records.len());
        }
        if !par_records.is_empty() {
            let path = write_par_scaling_json(dir, &par_records)
                .unwrap_or_else(|e| panic!("writing BENCH_par.json: {e}"));
            eprintln!("wrote {} ({} records)", path.display(), par_records.len());
        }
    }
}

/// The fixed regression-gate workload behind `scripts/verify.sh`'s
/// bench-regress stage: small deterministic corpus, paper methods,
/// k = 1 and 2. Every printed counter (and the index byte attribution)
/// is reproducible bit for bit; `kmm bench diff` compares the resulting
/// `BENCH_baseline.json` against the committed reference.
///
/// `KMM_BASELINE_OCC_RATE` overrides the rankall checkpoint rate — the
/// hook verify.sh uses to prove the gate actually fires on an injected
/// layout regression.
fn baseline(opts: &Opts) {
    let occ_rate = match std::env::var("KMM_BASELINE_OCC_RATE") {
        Ok(v) => v
            .parse::<usize>()
            .unwrap_or_else(|_| panic!("bad KMM_BASELINE_OCC_RATE: '{v}'")),
        Err(_) => kmm_bwt::FmBuildConfig::default().occ_rate,
    };
    println!("\n== Baseline: fixed regression-gate workload  (occ rate {occ_rate}) ==\n");
    let (records, attribution) = run_baseline(occ_rate);
    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            vec![
                r.method.to_string(),
                r.k.to_string(),
                fmt_secs(r.seconds),
                r.occurrences.to_string(),
                r.stats.rank_blocks_touched.to_string(),
                r.stats.rank_bytes_scanned.to_string(),
                r.stats.rarray_probes.to_string(),
                r.stats.mtree_nodes_built.to_string(),
                r.stats.mtree_nodes_reused.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "method",
                "k",
                "time",
                "occ",
                "rank blocks",
                "rank bytes",
                "rarray probes",
                "mtree built",
                "mtree reused"
            ],
            &rows
        )
    );
    println!(
        "index: n={} occ_rate={} sa_rate={}  rank payload {}  rank overhead {}  sampled SA {}  total {}",
        attribution.n,
        attribution.occ_rate,
        attribution.sa_rate,
        fmt_bytes(attribution.rank_payload_bytes as u64),
        fmt_bytes(attribution.rank_overhead_bytes as u64),
        fmt_bytes(attribution.sampled_sa_bytes as u64),
        fmt_bytes(attribution.total_bytes() as u64),
    );
    if let Some(dir) = &opts.out_dir {
        let path = write_baseline_json(dir, &records, &attribution)
            .unwrap_or_else(|e| panic!("writing BENCH_baseline.json: {e}"));
        eprintln!("wrote {} ({} records)", path.display(), records.len());
    }
}

/// The bidirectional head-to-head sweep: A(.), plain backward search
/// (BWT) and the scheme-driven bidirectional search at k = 1..3 on the
/// regression-gate corpus. The win criterion is deterministic — fewer
/// rank blocks and tree nodes at k >= 2, never wall-clock — so the
/// committed `BENCH_bidir.json` is gated by `kmm bench diff` in
/// `scripts/verify.sh` exactly like the baseline artifact.
fn bidir(opts: &Opts) {
    println!("\n== Bidir: scheme search vs A(.) vs backward search  (C. merolae stand-in, k = 1..3) ==\n");
    let (records, attribution) = run_bidir();
    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            vec![
                r.k.to_string(),
                r.method.to_string(),
                fmt_secs(r.seconds),
                r.occurrences.to_string(),
                r.stats.rank_blocks_touched.to_string(),
                r.stats.nodes_visited.to_string(),
                r.stats.rank_extensions.to_string(),
                r.stats.leaves.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "k",
                "method",
                "time",
                "occ",
                "rank blocks",
                "nodes",
                "extensions",
                "leaves"
            ],
            &rows
        )
    );
    for k in [2usize, 3] {
        let pick = |label: &str| {
            records
                .iter()
                .find(|r| r.k == k && r.method == label)
                .expect("sweep covers every method at every k")
        };
        let (bd, a, bwt) = (pick("Bidir"), pick("A(.)"), pick("BWT"));
        println!(
            "k={k}: Bidir rank blocks {} vs A(.) {} / BWT {}; nodes {} vs {} / {}",
            bd.stats.rank_blocks_touched,
            a.stats.rank_blocks_touched,
            bwt.stats.rank_blocks_touched,
            bd.stats.nodes_visited,
            a.stats.nodes_visited,
            bwt.stats.nodes_visited,
        );
    }
    if let Some(dir) = &opts.out_dir {
        let path = write_bidir_json(dir, &records, &attribution)
            .unwrap_or_else(|e| panic!("writing BENCH_bidir.json: {e}"));
        eprintln!("wrote {} ({} records)", path.display(), records.len());
    }
}

/// The EXPLAIN depth-profile workload: Algorithm A against the S-tree
/// baseline at k = 1..3 on the regression-gate corpus, with per-depth
/// pruned counts. Deterministic end to end — `BENCH_explain.json` is
/// gated by `kmm bench diff` in `scripts/verify.sh`.
fn explain(opts: &Opts) {
    println!("\n== Explain: depth-profile attribution, A(.) vs BWT  (C. merolae stand-in, k = 1..3) ==\n");
    let records = run_explain(&[1, 2, 3]);
    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            let get = |key: &str| {
                r.stats
                    .iter()
                    .find(|(n, _)| n == key)
                    .map_or(0, |&(_, v)| v)
            };
            let expanded: u64 = r
                .stats
                .iter()
                .filter(|(n, _)| n.ends_with(".expanded"))
                .map(|&(_, v)| v)
                .sum();
            let pruned = |suffix: &str| -> u64 {
                r.stats
                    .iter()
                    .filter(|(n, _)| n.ends_with(suffix))
                    .map(|&(_, v)| v)
                    .sum()
            };
            vec![
                r.method.clone(),
                r.k.to_string(),
                fmt_secs(r.seconds),
                r.occurrences.to_string(),
                expanded.to_string(),
                pruned(".pruned_empty_interval").to_string(),
                pruned(".pruned_budget").to_string(),
                pruned(".pruned_cutoff").to_string(),
                get("rank_blocks_touched").to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "method",
                "k",
                "time",
                "occ",
                "expanded",
                "pr.empty",
                "pr.budget",
                "pr.cutoff",
                "rank blocks"
            ],
            &rows
        )
    );
    if let Some(dir) = &opts.out_dir {
        let path = write_explain_json(dir, &records)
            .unwrap_or_else(|e| panic!("writing BENCH_explain.json: {e}"));
        eprintln!("wrote {} ({} records)", path.display(), records.len());
    }
}

/// Serving soak: spawn the sibling `kmm` binary (same target dir as
/// this one; override with `KMM_BIN`), drive its event-loop front end
/// through the keep-alive, tenant-shed, and connection-cap phases, and
/// record the structural admission counters. Everything gated is an
/// exact function of the request sequence — `BENCH_serve.json` diffs
/// bit-identically against itself.
fn servesoak(opts: &Opts) {
    println!("\n== Serve soak: event-loop admission control over live TCP ==\n");
    let kmm = match std::env::var_os("KMM_BIN") {
        Some(p) => PathBuf::from(p),
        None => {
            let exe = std::env::current_exe().expect("current_exe");
            exe.parent().expect("exe dir").join("kmm")
        }
    };
    if !kmm.is_file() {
        panic!(
            "kmm binary not found at {} (build it with `cargo build --release` \
             or point KMM_BIN at it)",
            kmm.display()
        );
    }
    let records = run_servesoak(&kmm).unwrap_or_else(|e| panic!("servesoak: {e}"));
    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            let stats = r
                .stats
                .iter()
                .map(|(n, v)| format!("{n}={v}"))
                .collect::<Vec<_>>()
                .join("  ");
            vec![
                r.phase.clone(),
                r.conns.to_string(),
                r.reqs.to_string(),
                fmt_secs(r.seconds),
                stats,
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(&["phase", "conns", "reqs/conn", "time", "counters"], &rows)
    );
    if let Some(dir) = &opts.out_dir {
        let path = write_serve_json(dir, &records)
            .unwrap_or_else(|e| panic!("writing BENCH_serve.json: {e}"));
        eprintln!("wrote {} ({} records)", path.display(), records.len());
    }
}

/// Thread-scaling sweep: one batch of reads searched at worker counts
/// 1, 2, 4, ... up to `--threads` (default 8). Results are bit-identical
/// at every width, so only wall-clock and throughput vary; on a single
/// hardware thread the sweep degenerates to an overhead measurement.
fn parscale(opts: &Opts) -> Vec<ParScalingRecord> {
    println!(
        "\n== Thread scaling: batch search throughput vs workers  (Rat stand-in, {} reads x {} bp, k = 2) ==\n",
        opts.reads.max(200),
        opts.read_len
    );
    let w = Workload::paper(
        ReferenceGenome::Rat,
        opts.scale,
        opts.reads.max(200),
        opts.read_len,
    );
    println!(
        "genome: {} ({} bp); host parallelism: {}",
        w.name,
        w.genome.len(),
        kmm_par::available_threads()
    );
    let idx = w.index();
    let mut widths = vec![1usize];
    while *widths.last().unwrap() * 2 <= opts.threads {
        widths.push(widths.last().unwrap() * 2);
    }
    if *widths.last().unwrap() != opts.threads {
        widths.push(opts.threads);
    }
    let mut records = Vec::new();
    let mut rows = Vec::new();
    for &threads in &widths {
        let rec = ParScalingRecord::measure(
            &idx,
            &w.reads,
            opts.read_len,
            2,
            Method::ALGORITHM_A,
            threads,
        );
        rows.push(vec![
            threads.to_string(),
            fmt_secs(rec.seconds),
            format!("{:.0}", rec.reads_per_sec),
            format!(
                "{:.2}x",
                records
                    .first()
                    .map_or(1.0, |f: &ParScalingRecord| f.seconds / rec.seconds)
            ),
            fmt_secs(rec.latency.p99 / 1e9),
            rec.occurrences.to_string(),
        ]);
        records.push(rec);
    }
    println!(
        "{}",
        format_table(
            &["threads", "time", "reads/s", "speedup", "p99", "occ"],
            &rows
        )
    );
    records
}

/// Fused-occ microbenchmark: full 4-way node expansion over an interval
/// worklist, four `extend_backward` calls (eight rank lookups) against
/// one `extend_all` (two interleaved-block visits). Both modes checksum
/// identically; only the wall-clock differs.
fn occbench(opts: &Opts) -> Vec<BenchRecord> {
    println!("\n== occ scaling: fused occ_all vs 4x extend_backward  (RatChr1 stand-in) ==\n");
    let genome = ReferenceGenome::RatChr1.generate_scaled(opts.scale);
    println!("genome: {} bp", genome.len());
    let outcome = run_occbench(&genome, 4_000, 25);
    let rows: Vec<Vec<String>> = outcome
        .records
        .iter()
        .map(|r| {
            vec![
                r.method.to_string(),
                fmt_secs(r.seconds),
                r.stats.rank_extensions.to_string(),
                r.stats.occ_fused.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(&["mode", "time", "rank lookups", "fused sweeps"], &rows)
    );
    println!("fused speedup: {:.2}x", outcome.speedup);
    let mut records = outcome.records;

    println!("\n== occ kernels: SIMD vs forced scalar block tally  (same worklist) ==\n");
    let kernels = run_occbench_kernels(&genome, 4_000, 25, &[64, 256, 1024]);
    let rows: Vec<Vec<String>> = kernels
        .records
        .iter()
        .map(|r| {
            vec![
                r.method.to_string(),
                r.m.to_string(),
                fmt_secs(r.seconds),
                r.stats.rank_extensions.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(&["mode", "rate", "time", "fused sweeps"], &rows)
    );
    println!(
        "dispatched kernel: {}; speedup at rate 1024: {:.2}x",
        kernels.kernel, kernels.speedup
    );
    records.extend(kernels.records);
    records
}

/// Cold-start: time `FmIndex::open_path` on saved indexes of growing
/// size, read path vs mmap path. The headline deterministic claim — mmap
/// startup I/O stays at 0 bytes while read I/O scales with the file —
/// lands in BENCH_coldstart.json for the regression gate.
fn coldstart(opts: &Opts) {
    println!(
        "\n== Cold start: index open, read vs mmap  (C. merolae stand-in, growing scale) ==\n"
    );
    let scales = [opts.scale * 0.25, opts.scale * 0.5, opts.scale];
    let records = run_coldstart(&scales, 5).unwrap_or_else(|e| panic!("coldstart: {e}"));
    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            vec![
                r.mode.to_string(),
                r.n.to_string(),
                fmt_secs(r.seconds),
                fmt_bytes(r.file_bytes),
                fmt_bytes(r.io_bytes),
                fmt_bytes(r.bytes_mapped),
                if r.borrowed == 1 { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "mode",
                "n",
                "open time",
                "file",
                "read",
                "mapped",
                "borrowed"
            ],
            &rows
        )
    );
    if let Some(dir) = &opts.out_dir {
        let path = write_coldstart_json(dir, &records)
            .unwrap_or_else(|e| panic!("writing BENCH_coldstart.json: {e}"));
        eprintln!("wrote {} ({} records)", path.display(), records.len());
    }
}

/// Paper Table 1: characteristics of genomes.
fn table1(opts: &Opts) {
    println!("\n== Table 1: Characteristics of genomes (synthetic stand-ins) ==\n");
    let rows: Vec<Vec<String>> = ReferenceGenome::ALL
        .iter()
        .map(|g| {
            let synthesised = ((g.scaled_size() as f64) * opts.scale) as usize;
            vec![
                g.name().to_string(),
                g.paper_size().to_string(),
                synthesised.to_string(),
                format!("{:.2}", g.gc()),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["Genome", "Paper size (bp)", "Synthesised (bp)", "GC"],
            &rows
        )
    );
}

/// Paper Fig. 11(a): average matching time as a function of k on the Rat
/// genome stand-in, the four compared methods.
fn fig11a(opts: &Opts) -> Vec<BenchRecord> {
    println!(
        "\n== Fig 11(a): time vs k  (Rat stand-in, {} reads x {} bp) ==\n",
        opts.reads, opts.read_len
    );
    let w = Workload::paper(ReferenceGenome::Rat, opts.scale, opts.reads, opts.read_len);
    println!("genome: {} ({} bp)", w.name, w.genome.len());
    let idx = w.index();
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for k in 1..=5usize {
        let mut row = vec![k.to_string()];
        for method in Method::PAPER_SET {
            let run = run_method(&idx, &w.reads, k, method);
            records.push(BenchRecord::from_run(
                &run,
                w.genome.len(),
                opts.read_len,
                k,
            ));
            row.push(fmt_secs(run.seconds));
        }
        rows.push(row);
    }
    println!(
        "{}",
        format_table(&["k", "BWT [34]", "Amir's", "Cole's", "A(.)"], &rows)
    );
    records
}

/// Paper Fig. 11(b): average matching time as a function of read length,
/// k = 5.
fn fig11b(opts: &Opts) -> Vec<BenchRecord> {
    println!(
        "\n== Fig 11(b): time vs read length  (Rat stand-in, {} reads, k = 5) ==\n",
        opts.reads
    );
    let g = ReferenceGenome::Rat;
    let genome = g.generate_scaled(opts.scale);
    println!("genome: {} bp", genome.len());
    let idx = KMismatchIndex::new(genome.clone());
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for read_len in [50usize, 100, 150, 200, 250, 300] {
        let reads = simulate_reads(&genome, opts.reads, read_len, g.seed() ^ 0x5eed);
        let mut row = vec![read_len.to_string()];
        for method in Method::PAPER_SET {
            let run = run_method(&idx, &reads, 5, method);
            records.push(BenchRecord::from_run(&run, genome.len(), read_len, 5));
            row.push(fmt_secs(run.seconds));
        }
        rows.push(row);
    }
    println!(
        "{}",
        format_table(&["len", "BWT [34]", "Amir's", "Cole's", "A(.)"], &rows)
    );
    records
}

/// Paper Table 2: number of leaf nodes (n') of the trees produced by
/// Algorithm A for growing k / read length.
fn table2(opts: &Opts) -> Vec<BenchRecord> {
    println!(
        "\n== Table 2: leaf counts n'  (Rat stand-in, {} reads per cell) ==\n",
        opts.reads
    );
    // The paper pairs k/length as 5/50, 10/100, 20/150, 30/200. Large k
    // explodes combinatorially, so this experiment runs at 1/10 of the
    // requested scale (documented in EXPERIMENTS.md).
    let g = ReferenceGenome::Rat;
    let genome = g.generate_scaled(opts.scale * 0.1);
    println!("genome: {} bp", genome.len());
    let idx = KMismatchIndex::new(genome.clone());
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (k, len) in [(5usize, 50usize), (10, 100), (20, 150), (30, 200)] {
        let reads = simulate_reads(&genome, opts.reads, len, g.seed() ^ 0x5eed);
        let a = run_method(&idx, &reads, k, Method::ALGORITHM_A);
        records.push(BenchRecord::from_run(&a, genome.len(), len, k));
        rows.push(vec![
            format!("{k}/{len}"),
            a.stats.leaves.to_string(),
            a.stats.nodes_visited.to_string(),
            fmt_secs(a.seconds),
        ]);
    }
    println!(
        "{}",
        format_table(
            &["k/len", "n' (leaves)", "nodes visited", "time A(.)"],
            &rows
        )
    );
    records
}

/// Reconstructed Fig. 12: all five genomes, all four methods, k = 5.
fn fig12(opts: &Opts) -> Vec<BenchRecord> {
    println!(
        "\n== Fig 12 (reconstructed): per-genome comparison  ({} reads x {} bp, k = 5) ==\n",
        opts.reads, opts.read_len
    );
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for g in ReferenceGenome::ALL {
        let w = Workload::paper(g, opts.scale, opts.reads, opts.read_len);
        if w.genome.len() < 10 * opts.read_len {
            continue;
        }
        let idx = w.index();
        let mut row = vec![format!("{} ({}bp)", g.name(), w.genome.len())];
        for method in Method::PAPER_SET {
            let run = run_method(&idx, &w.reads, 5, method);
            records.push(BenchRecord::from_run(
                &run,
                w.genome.len(),
                opts.read_len,
                5,
            ));
            row.push(fmt_secs(run.seconds));
        }
        rows.push(row);
    }
    println!(
        "{}",
        format_table(&["Genome", "BWT [34]", "Amir's", "Cole's", "A(.)"], &rows)
    );
    records
}

/// Beyond the paper: the modern seed-and-filter baseline vs the paper's
/// methods, and index-construction costs (ablation A3).
fn extended(opts: &Opts) {
    println!(
        "\n== Extended: seed-and-filter vs the paper's methods  ({} reads x {} bp) ==\n",
        opts.reads, opts.read_len
    );
    let w = Workload::paper(ReferenceGenome::Rat, opts.scale, opts.reads, opts.read_len);
    let idx = w.index();
    let mut rows = Vec::new();
    for k in [1usize, 3, 5] {
        for method in [
            Method::ALGORITHM_A,
            Method::Bwt { use_phi: true },
            Method::SeedFilter,
        ] {
            let run = run_method(&idx, &w.reads, k, method);
            rows.push(vec![
                k.to_string(),
                run.method.to_string(),
                fmt_secs(run.seconds),
                run.occurrences.to_string(),
            ]);
        }
    }
    println!("{}", format_table(&["k", "method", "time", "occ"], &rows));

    println!("\n== Extended: index construction (ablation A3) ==\n");
    let mut rows = Vec::new();
    for g in [
        ReferenceGenome::CElegans,
        ReferenceGenome::RatChr1,
        ReferenceGenome::Rat,
    ] {
        let genome = g.generate_scaled(opts.scale);
        let t0 = std::time::Instant::now();
        let idx = KMismatchIndex::new(genome.clone());
        let fm_time = t0.elapsed().as_secs_f64();
        let t0 = std::time::Instant::now();
        idx.suffix_tree();
        let st_time = t0.elapsed().as_secs_f64();
        rows.push(vec![
            format!("{} ({}bp)", g.name(), genome.len()),
            fmt_secs(fm_time),
            format!("{}", idx.fm().heap_bytes()),
            fmt_secs(st_time),
            format!("{}", std::mem::size_of_val(idx.suffix_tree().nodes())),
        ]);
    }
    println!(
        "{}",
        format_table(
            &["Genome", "FM build", "FM bytes", "ST build", "ST bytes"],
            &rows
        )
    );
}

/// DESIGN.md ablations A1 (rankall checkpoint rate) and A2 (reuse / φ).
fn ablation(opts: &Opts) {
    println!("\n== Ablation A1: rankall checkpoint rate (exact search) ==\n");
    let g = ReferenceGenome::RatChr1;
    let genome = g.generate_scaled(opts.scale);
    let reads = simulate_reads(&genome, opts.reads.max(200), opts.read_len, 99);
    let mut rows = Vec::new();
    for rate in [4usize, 16, 64, 128] {
        let mut rev = genome.clone();
        rev.reverse();
        rev.push(0);
        let fm = kmm_bwt::FmIndex::new(
            &rev,
            FmBuildConfig {
                occ_rate: rate,
                sa_rate: 16,
                ..FmBuildConfig::default()
            },
        );
        let start = std::time::Instant::now();
        let mut total = 0u64;
        for r in &reads {
            let rrev: Vec<u8> = r.iter().rev().copied().collect();
            total += fm.count(&rrev) as u64;
        }
        rows.push(vec![
            rate.to_string(),
            format!("{}", fm.heap_bytes()),
            fmt_secs(start.elapsed().as_secs_f64()),
            total.to_string(),
        ]);
    }
    println!(
        "{}",
        format_table(&["rate", "index bytes", "time", "hits"], &rows)
    );

    println!("\n== Ablation A2: Algorithm A reuse and baseline φ ==\n");
    let w = Workload::paper(
        ReferenceGenome::RatChr1,
        opts.scale,
        opts.reads,
        opts.read_len,
    );
    let idx = w.index();
    let mut rows = Vec::new();
    for k in [2usize, 5] {
        for method in [
            Method::AlgorithmA { reuse: true },
            Method::AlgorithmA { reuse: false },
            Method::Bwt { use_phi: true },
            Method::Bwt { use_phi: false },
        ] {
            let run = run_method(&idx, &w.reads, k, method);
            rows.push(vec![
                k.to_string(),
                run.method.to_string(),
                fmt_secs(run.seconds),
                run.stats.rank_extensions.to_string(),
                run.stats.reuse_hits.to_string(),
                run.stats.phi_prunes.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        format_table(
            &[
                "k",
                "method",
                "time",
                "rank ext",
                "reuse hits",
                "phi prunes"
            ],
            &rows
        )
    );
}
