//! The `servesoak` workload: drive a real `kmm serve` daemon over TCP
//! and record the front end's admission-control counters.
//!
//! Unlike the search benches, the quantity under test here is not
//! wall-clock but *bookkeeping*: every phase sends a fixed request
//! sequence whose outcome is a pure function of the server's connection
//! state machine — keep-alive reuse counts, per-tenant token-bucket
//! refusals, and connection-cap sheds are all structurally determined
//! by (connections opened, requests per connection, configured limits).
//! Two runs of the same binary must agree bit for bit, so the artifact
//! (`BENCH_serve.json`) gates under `kmm bench diff` exactly like the
//! search-counter baselines.
//!
//! The bench crate cannot link the server directly (the root crate
//! depends on this one), so the soak shells out to a sibling `kmm`
//! binary: build the index with `kmm generate` + `kmm index`, start
//! `kmm serve --port-file`, talk plain HTTP/1.1 over `TcpStream`, and
//! shut down via `POST /shutdown`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use kmm_telemetry::Json;

use crate::BENCH_SCHEMA;

/// The experiment name of the serving soak (and thus its artifact,
/// `BENCH_serve.json`).
pub const SERVE_EXPERIMENT: &str = "serve";

/// Keep-alive connections opened in the reuse phase.
const SOAK_CONNS: usize = 4;
/// Requests sent on each keep-alive connection.
const SOAK_REQS: usize = 8;
/// Back-to-back requests sent by the rate-limited tenant.
const TENANT_BURST: usize = 5;
/// `--max-conns` handed to the server; the cap phase holds this many.
const CONN_CAP: usize = 8;
/// Connections opened past the cap; each must be refused with a 429.
const CAP_EXTRA: usize = 3;

/// One phase of the soak: a fixed request sequence and the counters it
/// deterministically produced.
#[derive(Debug, Clone)]
pub struct ServeSoakRecord {
    /// Phase label (`keepalive`, `tenant-shed`, `conn-cap`, `counters`).
    pub phase: String,
    /// Served genome length in bp (shared across phases).
    pub n: usize,
    /// Connections the phase opened.
    pub conns: usize,
    /// Requests the phase sent per connection.
    pub reqs: usize,
    /// Wall-clock seconds for the phase (informational, not gated).
    pub seconds: f64,
    /// Deterministic counters: client-observed outcomes plus the
    /// server's own `serve.*` counters scraped from `/stats.json`.
    pub stats: Vec<(String, u64)>,
}

impl ServeSoakRecord {
    /// Serialise in the `BENCH_*.json` record shape. The phase label
    /// rides in the `method` slot and `(m, k)` carry the phase's
    /// connection/request geometry so `kmm bench diff` keys records
    /// the same way it keys search benches.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("method", Json::Str(self.phase.clone())),
            ("n", Json::UInt(self.n as u64)),
            ("m", Json::UInt(self.conns as u64)),
            ("k", Json::UInt(self.reqs as u64)),
            ("seconds", Json::Float(self.seconds)),
            (
                "stats",
                Json::Obj(
                    self.stats
                        .iter()
                        .map(|(name, v)| (name.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Write `BENCH_serve.json` into `dir` and return its path.
pub fn write_serve_json(dir: &Path, records: &[ServeSoakRecord]) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{SERVE_EXPERIMENT}.json"));
    let doc = Json::obj([
        ("schema", Json::Str(BENCH_SCHEMA.to_string())),
        ("experiment", Json::Str(SERVE_EXPERIMENT.to_string())),
        (
            "records",
            Json::Arr(records.iter().map(ServeSoakRecord::to_json).collect()),
        ),
    ]);
    std::fs::write(&path, doc.to_pretty())?;
    Ok(path)
}

fn io_err(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::other(msg.into())
}

/// A keep-alive HTTP/1.1 client connection. `carry` holds bytes past
/// the end of the last framed response — the server may coalesce
/// pipelined responses into one write, so anything after a response's
/// `Content-Length` boundary belongs to the next one.
struct SoakConn {
    stream: TcpStream,
    carry: Vec<u8>,
}

impl SoakConn {
    fn connect(addr: SocketAddr) -> std::io::Result<SoakConn> {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
        stream.set_read_timeout(Some(Duration::from_secs(20)))?;
        Ok(SoakConn {
            stream,
            carry: Vec::new(),
        })
    }

    fn send(&mut self, request: &str) -> std::io::Result<()> {
        self.stream.write_all(request.as_bytes())
    }

    /// Read one `Content-Length`-framed response; returns the status.
    fn read_status(&mut self) -> std::io::Result<(u16, String)> {
        let mut chunk = [0u8; 4096];
        let header_end = loop {
            if let Some(pos) = self.carry.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io_err("EOF before response headers"));
            }
            self.carry.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&self.carry[..header_end]).to_string();
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io_err(format!("unparseable status line: {head}")))?;
        let content_length: usize = head
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().ok())
                    .flatten()
            })
            .ok_or_else(|| io_err("response without Content-Length"))?;
        let total = header_end + 4 + content_length;
        while self.carry.len() < total {
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io_err("EOF mid response body"));
            }
            self.carry.extend_from_slice(&chunk[..n]);
        }
        let body = String::from_utf8_lossy(&self.carry[header_end + 4..total]).to_string();
        self.carry.drain(..total);
        Ok((status, body))
    }
}

/// One-shot request on a fresh connection (`Connection: close`).
fn http_once(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &str,
) -> std::io::Result<(u16, String)> {
    let mut conn = SoakConn::connect(addr)?;
    conn.send(&format!(
        "{method} {path} HTTP/1.1\r\nHost: soak\r\n{headers}Connection: close\r\nContent-Length: 0\r\n\r\n"
    ))?;
    conn.read_status()
}

/// A server process that is torn down even when the soak errors out.
struct ServerGuard(Child);

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn run_kmm(kmm: &Path, args: &[&str]) -> std::io::Result<()> {
    let status = Command::new(kmm)
        .args(args)
        .arg("--quiet")
        .stdout(Stdio::null())
        .status()?;
    if !status.success() {
        return Err(io_err(format!("kmm {} failed: {status}", args.join(" "))));
    }
    Ok(())
}

/// Expect a deterministic counter to hit its structural value; any
/// drift is a server bookkeeping bug, not noise, so fail loudly rather
/// than write a poisoned artifact.
fn expect(name: &str, got: u64, want: u64) -> std::io::Result<u64> {
    if got != want {
        return Err(io_err(format!(
            "soak invariant broken: {name} = {got}, expected {want}"
        )));
    }
    Ok(got)
}

/// Start `kmm serve` over `idx` with the given admission flags and
/// wait for its `--port-file`.
fn spawn_server(
    kmm: &Path,
    idx: &Path,
    port_file: &Path,
    extra: &[&str],
) -> std::io::Result<(ServerGuard, SocketAddr)> {
    let _ = std::fs::remove_file(port_file);
    let child = Command::new(kmm)
        .args([
            "serve",
            "--index",
            idx.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "1",
            "--port-file",
            port_file.to_str().unwrap(),
            "--idle-timeout-ms",
            "30000",
            "--quiet",
        ])
        .args(extra)
        .stdout(Stdio::null())
        .spawn()?;
    let mut guard = ServerGuard(child);
    let addr = wait_for_port(port_file, &mut guard.0)?;
    Ok((guard, addr))
}

/// Scrape one `serve.*` counter set off `/stats.json`. A 429 here is
/// the connection cap still holding freshly-dropped sockets from an
/// earlier phase — retry until the reaper catches up.
fn scrape_counters(addr: SocketAddr) -> std::io::Result<Json> {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let (status, stats_body) = http_once(addr, "GET", "/stats.json", "")?;
        match status {
            200 => {
                return Json::parse(&stats_body).map_err(|e| io_err(format!("stats.json: {e:?}")))
            }
            429 if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(50)),
            other => return Err(io_err(format!("/stats.json -> {other}"))),
        }
    }
}

fn counter_of(doc: &Json, name: &str) -> u64 {
    doc.get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// `POST /shutdown` and wait for a clean exit.
fn shutdown(addr: SocketAddr, guard: ServerGuard) -> std::io::Result<()> {
    let (status, _) = http_once(addr, "POST", "/shutdown", "")?;
    if status != 200 {
        return Err(io_err(format!("/shutdown -> {status}")));
    }
    let mut guard = guard;
    let exit = guard.0.wait()?;
    std::mem::forget(guard); // already reaped; Drop must not kill the pid again
    if !exit.success() {
        return Err(io_err(format!("server exited with {exit}")));
    }
    Ok(())
}

/// Run the serving soak against a sibling `kmm` binary: generate a
/// small deterministic genome, index it, and drive two `kmm serve`
/// instances — one unlimited (keep-alive reuse + connection-cap
/// phases) and one with `--tenant-rate 1` (token-bucket phase; the
/// rate also applies to anonymous traffic, so the rate-limited phases
/// need their own process). Every gated counter is cross-checked
/// against its structural expectation before it lands in a record.
pub fn run_servesoak(kmm: &Path) -> std::io::Result<Vec<ServeSoakRecord>> {
    let dir = std::env::temp_dir().join(format!("kmm-servesoak-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let fa = dir.join("ref.fa");
    let idx = dir.join("ref.idx");
    let port_file = dir.join("port");

    run_kmm(
        kmm,
        &[
            "generate",
            "--genome",
            "cmerolae",
            "--scale",
            "0.05",
            "-o",
            fa.to_str().unwrap(),
        ],
    )?;
    run_kmm(
        kmm,
        &[
            "index",
            "--reference",
            fa.to_str().unwrap(),
            "-o",
            idx.to_str().unwrap(),
            "--threads",
            "1",
        ],
    )?;
    let n = genome_len(&fa)?;

    let (guard, addr) = spawn_server(
        kmm,
        &idx,
        &port_file,
        &["--max-conns", &CONN_CAP.to_string()],
    )?;

    let mut records = Vec::new();

    // Phase 1 — keep-alive reuse: SOAK_CONNS connections, SOAK_REQS
    // sequential /healthz requests each. Reuses = conns * (reqs - 1).
    let start = Instant::now();
    let mut ok = 0u64;
    let mut conns: Vec<SoakConn> = Vec::new();
    for _ in 0..SOAK_CONNS {
        conns.push(SoakConn::connect(addr)?);
    }
    for conn in &mut conns {
        for _ in 0..SOAK_REQS {
            conn.send("GET /healthz HTTP/1.1\r\nHost: soak\r\n\r\n")?;
            let (status, body) = conn.read_status()?;
            if status != 200 {
                return Err(io_err(format!("healthz -> {status}: {body}")));
            }
            ok += 1;
        }
    }
    drop(conns);
    records.push(ServeSoakRecord {
        phase: "keepalive".into(),
        n,
        conns: SOAK_CONNS,
        reqs: SOAK_REQS,
        seconds: start.elapsed().as_secs_f64(),
        stats: vec![
            (
                "requests_ok".into(),
                expect("requests_ok", ok, (SOAK_CONNS * SOAK_REQS) as u64)?,
            ),
            (
                "reuses_expected".into(),
                (SOAK_CONNS * (SOAK_REQS - 1)) as u64,
            ),
        ],
    });

    // Phase 2 — connection cap: hold CONN_CAP live connections, then
    // open CAP_EXTRA more; each extra is refused with a 429 before the
    // client sends a byte. Earlier phases' sockets are closed
    // client-side but the server reaps them asynchronously, so if a
    // held-slot probe draws the cap 429 the whole phase backs off and
    // retries until the leftover slots are reclaimed.
    let start = Instant::now();
    let shed = loop {
        let mut held: Vec<SoakConn> = Vec::new();
        let mut settled = true;
        for _ in 0..CONN_CAP {
            let mut c = SoakConn::connect(addr)?;
            // Prove the slot is live: a refused connection answers the
            // cap 429 without reading our request.
            c.send("GET /healthz HTTP/1.1\r\nHost: soak\r\n\r\n")?;
            match c.read_status()?.0 {
                200 => held.push(c),
                429 => {
                    settled = false;
                    break;
                }
                other => return Err(io_err(format!("cap probe -> unexpected {other}"))),
            }
        }
        if !settled {
            if start.elapsed() > Duration::from_secs(20) {
                return Err(io_err("conn-cap phase never settled"));
            }
            drop(held);
            std::thread::sleep(Duration::from_millis(100));
            continue;
        }
        let mut shed = 0u64;
        for _ in 0..CAP_EXTRA {
            let mut c = SoakConn::connect(addr)?;
            match c.read_status()?.0 {
                429 => shed += 1,
                other => return Err(io_err(format!("over-cap connect -> {other}, want 429"))),
            }
        }
        drop(held);
        break shed;
    };
    records.push(ServeSoakRecord {
        phase: "conn-cap".into(),
        n,
        conns: CONN_CAP + CAP_EXTRA,
        reqs: 0,
        seconds: start.elapsed().as_secs_f64(),
        stats: vec![(
            "refused_429".into(),
            expect("cap refused_429", shed, CAP_EXTRA as u64)?,
        )],
    });

    // Phase 3 — scrape the first server's ledger and gate it against
    // the structural expectations. Only counters that are exact
    // functions of the request sequence are recorded:
    // `conns_opened/closed` race the reaper and `shed_conns` absorbs
    // any settling retries from phase 2, so those stay out.
    let start = Instant::now();
    let doc = scrape_counters(addr)?;
    let want_reuses = (SOAK_CONNS * (SOAK_REQS - 1)) as u64;
    let stats = vec![
        (
            "serve.keepalive_reuses".into(),
            expect(
                "serve.keepalive_reuses",
                counter_of(&doc, "serve.keepalive_reuses"),
                want_reuses,
            )?,
        ),
        (
            "serve.shed_tenant".into(),
            expect(
                "serve.shed_tenant",
                counter_of(&doc, "serve.shed_tenant"),
                0,
            )?,
        ),
        (
            "serve.shed_stall".into(),
            expect("serve.shed_stall", counter_of(&doc, "serve.shed_stall"), 0)?,
        ),
        (
            "serve.shed".into(),
            expect("serve.shed", counter_of(&doc, "serve.shed"), 0)?,
        ),
    ];
    records.push(ServeSoakRecord {
        phase: "counters".into(),
        n,
        conns: 0,
        reqs: 0,
        seconds: start.elapsed().as_secs_f64(),
        stats,
    });
    shutdown(addr, guard)?;

    // Phase 4 — per-tenant admission, on its own server because
    // `--tenant-rate` also meters anonymous traffic: one tenant bursts
    // TENANT_BURST requests back-to-back at rate 1. The bucket starts
    // with one token and the burst finishes long before the next
    // refill, so exactly one request passes and the rest draw 429s.
    let (guard, addr) = spawn_server(kmm, &idx, &port_file, &["--tenant-rate", "1"])?;
    let start = Instant::now();
    let mut admitted = 0u64;
    let mut refused = 0u64;
    let mut conn = SoakConn::connect(addr)?;
    for _ in 0..TENANT_BURST {
        conn.send("GET /healthz HTTP/1.1\r\nHost: soak\r\nX-Kmm-Tenant: soak\r\n\r\n")?;
        match conn.read_status()?.0 {
            200 => admitted += 1,
            429 => refused += 1,
            other => return Err(io_err(format!("tenant burst -> unexpected {other}"))),
        }
    }
    drop(conn);
    // The anonymous bucket is untouched by the burst, so the one
    // scrape below is admitted on its starting token.
    let doc = scrape_counters(addr)?;
    records.push(ServeSoakRecord {
        phase: "tenant-shed".into(),
        n,
        conns: 1,
        reqs: TENANT_BURST,
        seconds: start.elapsed().as_secs_f64(),
        stats: vec![
            ("admitted".into(), expect("admitted", admitted, 1)?),
            (
                "refused_429".into(),
                expect("refused_429", refused, (TENANT_BURST - 1) as u64)?,
            ),
            (
                "serve.shed_tenant".into(),
                expect(
                    "serve.shed_tenant",
                    counter_of(&doc, "serve.shed_tenant"),
                    (TENANT_BURST - 1) as u64,
                )?,
            ),
            (
                "serve.keepalive_reuses".into(),
                expect(
                    "serve.keepalive_reuses",
                    counter_of(&doc, "serve.keepalive_reuses"),
                    (TENANT_BURST - 1) as u64,
                )?,
            ),
        ],
    });
    shutdown(addr, guard)?;

    let _ = std::fs::remove_dir_all(&dir);
    Ok(records)
}

/// Total sequence length of a generated FASTA (sum of non-header lines).
fn genome_len(fa: &Path) -> std::io::Result<usize> {
    let text = std::fs::read_to_string(fa)?;
    Ok(text
        .lines()
        .filter(|l| !l.starts_with('>'))
        .map(str::len)
        .sum())
}

/// Poll the `--port-file` until the server writes its ephemeral port.
fn wait_for_port(port_file: &Path, child: &mut Child) -> std::io::Result<SocketAddr> {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(text) = std::fs::read_to_string(port_file) {
            if let Ok(port) = text.trim().parse::<u16>() {
                return Ok(SocketAddr::from(([127, 0, 0, 1], port)));
            }
        }
        if let Some(status) = child.try_wait()? {
            return Err(io_err(format!("server exited before binding: {status}")));
        }
        if Instant::now() > deadline {
            return Err(io_err("timed out waiting for --port-file"));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}
