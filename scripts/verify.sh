#!/usr/bin/env bash
# Repo verification: the tier-1 gate (ROADMAP.md), formatting, the full
# workspace test suite, and an end-to-end `kmm search --stats` smoke test
# on a tiny synthetic genome.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo "== cargo fmt --check =="
cargo fmt --check

echo "== workspace tests =="
cargo test --workspace -q

echo "== kmm search --stats smoke test =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
kmm=target/release/kmm
"$kmm" generate --genome cmerolae --scale 0.02 -o "$tmp/ref.fa"
"$kmm" index --reference "$tmp/ref.fa" -o "$tmp/ref.idx"
# A pattern lifted from the reference itself (second FASTA line, first
# 40 bases) is guaranteed to occur at least once.
pattern=$(sed -n 2p "$tmp/ref.fa" | cut -c1-40)
"$kmm" search --index "$tmp/ref.idx" --pattern "$pattern" -k 2 \
    --stats --stats-json "$tmp/stats.json" > "$tmp/hits.tsv" 2> "$tmp/summary.txt"
grep -q "occurrences" "$tmp/summary.txt"
grep -q "search.queries" "$tmp/summary.txt"
test -s "$tmp/hits.tsv"
# The JSON artifact must carry the schema tag and all three stages.
for needle in kmm-telemetry/v1 index.load preprocess.rarray search.query; do
    grep -q "$needle" "$tmp/stats.json"
done

echo "== kmm search --threads 4 smoke test (multi-threaded batch) =="
# Index construction and batch search across 4 workers must reproduce
# the single-threaded hits byte for byte.
"$kmm" index --reference "$tmp/ref.fa" -o "$tmp/ref-mt.idx" --threads 4
cmp "$tmp/ref.idx" "$tmp/ref-mt.idx"
"$kmm" search --index "$tmp/ref-mt.idx" --pattern "$pattern" -k 2 --threads 4 \
    --stats > "$tmp/hits-mt.tsv" 2> "$tmp/summary-mt.txt"
grep -q "occurrences" "$tmp/summary-mt.txt"
grep -q "search.queries" "$tmp/summary-mt.txt"
cmp "$tmp/hits.tsv" "$tmp/hits-mt.tsv"
# Multi-pattern batch: two patterns fan out across the pool; output lines
# are prefixed with the 0-based pattern index, in input order.
pattern2=$(sed -n 2p "$tmp/ref.fa" | cut -c41-80)
"$kmm" search --index "$tmp/ref-mt.idx" --pattern "$pattern" --pattern "$pattern2" \
    -k 2 -j 4 > "$tmp/hits-multi.tsv" 2> "$tmp/summary-multi.txt"
grep -q "across 2 patterns" "$tmp/summary-multi.txt"
grep -q "^0	" "$tmp/hits-multi.tsv"
grep -q "^1	" "$tmp/hits-multi.tsv"
# Flag validation: zero and junk thread counts must be rejected.
if "$kmm" search --index "$tmp/ref-mt.idx" --pattern "$pattern" --threads 0 2>/dev/null; then
    echo "verify: --threads 0 was not rejected" >&2; exit 1
fi
if "$kmm" search --index "$tmp/ref-mt.idx" --pattern "$pattern" --threads nope 2>/dev/null; then
    echo "verify: --threads nope was not rejected" >&2; exit 1
fi

echo "verify: OK"
