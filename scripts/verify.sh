#!/usr/bin/env bash
# Repo verification: the tier-1 gate (ROADMAP.md), formatting, the full
# workspace test suite, and an end-to-end `kmm search --stats` smoke test
# on a tiny synthetic genome.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo "== cargo fmt --check =="
cargo fmt --check

echo "== workspace tests =="
cargo test --workspace -q

echo "== kmm search --stats smoke test =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
kmm=target/release/kmm
"$kmm" generate --genome cmerolae --scale 0.02 -o "$tmp/ref.fa"
"$kmm" index --reference "$tmp/ref.fa" -o "$tmp/ref.idx"
# A pattern lifted from the reference itself (second FASTA line, first
# 40 bases) is guaranteed to occur at least once.
pattern=$(sed -n 2p "$tmp/ref.fa" | cut -c1-40)
"$kmm" search --index "$tmp/ref.idx" --pattern "$pattern" -k 2 \
    --stats --stats-json "$tmp/stats.json" > "$tmp/hits.tsv" 2> "$tmp/summary.txt"
grep -q "occurrences" "$tmp/summary.txt"
grep -q "search.queries" "$tmp/summary.txt"
test -s "$tmp/hits.tsv"
# The JSON artifact must carry the schema tag and all three stages.
for needle in kmm-telemetry/v1 index.load preprocess.rarray search.query; do
    grep -q "$needle" "$tmp/stats.json"
done

echo "== kmm search --threads 4 smoke test (multi-threaded batch) =="
# Index construction and batch search across 4 workers must reproduce
# the single-threaded hits byte for byte.
"$kmm" index --reference "$tmp/ref.fa" -o "$tmp/ref-mt.idx" --threads 4
cmp "$tmp/ref.idx" "$tmp/ref-mt.idx"
"$kmm" search --index "$tmp/ref-mt.idx" --pattern "$pattern" -k 2 --threads 4 \
    --stats > "$tmp/hits-mt.tsv" 2> "$tmp/summary-mt.txt"
grep -q "occurrences" "$tmp/summary-mt.txt"
grep -q "search.queries" "$tmp/summary-mt.txt"
cmp "$tmp/hits.tsv" "$tmp/hits-mt.tsv"
# Multi-pattern batch: two patterns fan out across the pool; output lines
# are prefixed with the 0-based pattern index, in input order.
pattern2=$(sed -n 2p "$tmp/ref.fa" | cut -c41-80)
"$kmm" search --index "$tmp/ref-mt.idx" --pattern "$pattern" --pattern "$pattern2" \
    -k 2 -j 4 > "$tmp/hits-multi.tsv" 2> "$tmp/summary-multi.txt"
grep -q "across 2 patterns" "$tmp/summary-multi.txt"
grep -q "^0	" "$tmp/hits-multi.tsv"
grep -q "^1	" "$tmp/hits-multi.tsv"
# Flag validation: zero and junk thread counts must be rejected.
if "$kmm" search --index "$tmp/ref-mt.idx" --pattern "$pattern" --threads 0 2>/dev/null; then
    echo "verify: --threads 0 was not rejected" >&2; exit 1
fi
if "$kmm" search --index "$tmp/ref-mt.idx" --pattern "$pattern" --threads nope 2>/dev/null; then
    echo "verify: --threads nope was not rejected" >&2; exit 1
fi

echo "== kmm search --trace-out smoke test (span tracing) =="
"$kmm" search --index "$tmp/ref.idx" --pattern "$pattern" -k 2 \
    --trace-out "$tmp/nested/dir/trace.json" --slowest 3 \
    > /dev/null 2> "$tmp/summary-trace.txt"
grep -q "trace ->" "$tmp/summary-trace.txt"
grep -q "slowest" "$tmp/summary-trace.txt"
# The artifact is Chrome trace-event JSON (loadable in Perfetto).
grep -q '"traceEvents"' "$tmp/nested/dir/trace.json"
grep -q '"ph": "X"' "$tmp/nested/dir/trace.json"

echo "== kmm explain smoke test (depth-profile attribution) =="
"$kmm" explain --index "$tmp/ref.idx" --pattern "$pattern" -k 2 \
    > "$tmp/explain.txt" 2>/dev/null
grep -q "EXPLAIN pattern=" "$tmp/explain.txt"
grep -q "verdict:" "$tmp/explain.txt"
"$kmm" explain --index "$tmp/ref.idx" --pattern "$pattern" -k 2 --json \
    > "$tmp/explain.json" 2>/dev/null
python3 -c "
import json
doc = json.load(open('$tmp/explain.json'))
assert doc['schema'] == 'kmm-explain/v1', doc['schema']
assert doc['verdict'] and doc['verdict']['winner'], doc.get('verdict')
assert all(m['work_units'] > 0 for m in doc['methods']), doc['methods']
# Uninstrumented text scanners (Amir) report no depth rows; the
# tree-walkers must, and their rows must sum to real expansions.
profiled = [m for m in doc['methods'] if m['depths']]
assert profiled, 'no method produced a depth profile'
for m in profiled:
    assert sum(d['expanded'] for d in m['depths']) > 0, m['method']
" || { echo "verify: explain JSON report is malformed" >&2; exit 1; }
# The verdict reads counters, never clocks: rerunning at a different
# thread width must reproduce the document byte for byte.
"$kmm" explain --index "$tmp/ref.idx" --pattern "$pattern" -k 2 --json \
    --threads 8 > "$tmp/explain-t8.json" 2>/dev/null
cmp "$tmp/explain.json" "$tmp/explain-t8.json"

echo "== kmm serve smoke test =="
# Start the daemon on an ephemeral port, discover it via --port-file.
"$kmm" serve --index "$tmp/ref.idx" --addr 127.0.0.1:0 --threads 2 -k 2 \
    --port-file "$tmp/port" 2> "$tmp/serve.log" &
serve_pid=$!
for _ in $(seq 1 100); do
    [ -s "$tmp/port" ] && break
    sleep 0.1
done
[ -s "$tmp/port" ] || { echo "verify: serve never wrote its port file" >&2; exit 1; }
port=$(cat "$tmp/port")
# Tiny HTTP client over bash's /dev/tcp (no curl dependency).
http_get() {
    exec 3<>"/dev/tcp/127.0.0.1/$port"
    printf 'GET %s HTTP/1.1\r\nHost: v\r\nConnection: close\r\n\r\n' "$1" >&3
    cat <&3
    exec 3<&- 3>&-
}
http_post() {
    exec 3<>"/dev/tcp/127.0.0.1/$port"
    printf 'POST %s HTTP/1.1\r\nHost: v\r\nContent-Length: %s\r\nConnection: close\r\n\r\n%s' \
        "$1" "${#2}" "$2" >&3
    cat <&3
    exec 3<&- 3>&-
}
http_get /healthz | grep -q "200 OK"
# /metrics speaks Prometheus: typed series with real samples.
metrics=$(http_get /metrics)
echo "$metrics" | grep -q "^# TYPE "
echo "$metrics" | grep -q "kmm_http_requests_total"
# ...including the flight-recorder and sliding-window gauges.
echo "$metrics" | grep -q "kmm_flight_recorder_capacity"
echo "$metrics" | grep -q "kmm_http_window_samples"
# The live dashboard is one self-contained HTML document.
dash=$(http_get /dashboard)
echo "$dash" | grep -q "200 OK"
echo "$dash" | grep -q "<!DOCTYPE html>"
# POST /explain serves the same kmm-explain/v1 report as the CLI.
http_post /explain "{\"pattern\": \"$pattern\", \"k\": 2}" > "$tmp/http-explain.json"
grep -q "kmm-explain/v1" "$tmp/http-explain.json"
grep -q '"work_units"' "$tmp/http-explain.json"
grep -q '"pruned_budget"' "$tmp/http-explain.json"
# POST /search reports the same positions as the CLI search path.
http_post /search "{\"pattern\": \"$pattern\", \"k\": 2}" > "$tmp/http-search.json"
grep -q '"occurrences"' "$tmp/http-search.json"
cli_positions=$(cut -f1 "$tmp/hits.tsv" | sort -n | tr '\n' ',')
http_positions=$(grep -o '"position": [0-9]*' "$tmp/http-search.json" \
    | grep -o '[0-9]*' | sort -n | tr '\n' ',')
if [ "$cli_positions" != "$http_positions" ]; then
    echo "verify: POST /search ($http_positions) != CLI search ($cli_positions)" >&2
    exit 1
fi
# Clean shutdown: the daemon acknowledges and the process exits.
http_post /shutdown "" | grep -q "200 OK"
wait "$serve_pid"
grep -q "served" "$tmp/serve.log"

echo "== occbench smoke: BENCH_occ.json with occ, occ_all and kernel rows =="
target/release/experiments occbench --scale 0.02 --out-dir "$tmp/bench" \
    > "$tmp/occbench.txt"
grep -q "fused speedup" "$tmp/occbench.txt"
grep -q "dispatched kernel" "$tmp/occbench.txt"
test -s "$tmp/bench/BENCH_occ.json"
python3 -c "
import json, sys
doc = json.load(open('$tmp/bench/BENCH_occ.json'))
assert doc['schema'] == 'kmm-bench/v1', doc['schema']
methods = {r['method'] for r in doc['records']}
assert {'occ', 'occ_all'} <= methods, methods
# The SIMD-vs-scalar sweep lands one pair per checkpoint rate.
for rate in (64, 256, 1024):
    assert f'occ_all_scalar@r{rate}' in methods, methods
    assert f'occ_all_simd@r{rate}' in methods, methods
" || { echo "verify: BENCH_occ.json missing occ/occ_all/kernel rows" >&2; exit 1; }

echo "== SIMD beats scalar at wide checkpoint rates (kmm bench diff) =="
# Split the kernel sweep into a scalar doc and a simd doc with matching
# record keys, then let the timing gate decide: if the SIMD kernel is
# not at least as fast as forced-scalar at rate 1024, the diff fails.
# Only meaningful when the dispatcher actually picked a vector kernel.
if grep -q "dispatched kernel: avx2" "$tmp/occbench.txt"; then
    python3 -c "
import json
doc = json.load(open('$tmp/bench/BENCH_occ.json'))
def pick(suffix):
    out = dict(doc)
    out['records'] = [
        {**r, 'method': 'occ_all_kernel@r1024'}
        for r in doc['records'] if r['method'] == f'occ_all_{suffix}@r1024'
    ]
    assert out['records'], f'no occ_all_{suffix}@r1024 row'
    return out
json.dump(pick('scalar'), open('$tmp/bench/occ-scalar.json', 'w'))
json.dump(pick('simd'), open('$tmp/bench/occ-simd.json', 'w'))
"
    "$kmm" bench diff "$tmp/bench/occ-scalar.json" "$tmp/bench/occ-simd.json" \
        --fail-on-time-regress 0 2> "$tmp/diff-simd.txt" \
        || { echo "verify: SIMD kernel slower than scalar at rate 1024" >&2
             cat "$tmp/diff-simd.txt" >&2; exit 1; }
else
    echo "  (no AVX2 on this machine; kernel timing gate skipped)"
fi

echo "== parallel index determinism at widths 1 and 8 =="
# The interleaved-block rank build must stay byte-identical at any
# thread width (width 4 is already pinned above against the default).
"$kmm" index --reference "$tmp/ref.fa" -o "$tmp/ref-w1.idx" --threads 1
"$kmm" index --reference "$tmp/ref.fa" -o "$tmp/ref-w8.idx" --threads 8
cmp "$tmp/ref.idx" "$tmp/ref-w1.idx"
cmp "$tmp/ref.idx" "$tmp/ref-w8.idx"

echo "== chaos smoke: failpoint arming and deadline flags =="
# Bad failpoint specs are rejected up front with a clear error.
if KMM_FAILPOINTS='x=frobnicate' "$kmm" search --index "$tmp/ref.idx" \
    --pattern "$pattern" 2> "$tmp/badspec.txt"; then
    echo "verify: bad KMM_FAILPOINTS spec was not rejected" >&2; exit 1
fi
grep -q "bad failpoint spec" "$tmp/badspec.txt"
# An injected index-load failure surfaces as an ordinary CLI error.
if KMM_FAILPOINTS='index.load.io=err' "$kmm" search --index "$tmp/ref.idx" \
    --pattern "$pattern" 2> "$tmp/ioerr.txt"; then
    echo "verify: injected index.load.io error did not fail the search" >&2; exit 1
fi
grep -q "injected fault" "$tmp/ioerr.txt"
# Deadline flags: zero is rejected, a generous budget is bit-identical.
if "$kmm" search --index "$tmp/ref.idx" --pattern "$pattern" --timeout-ms 0 2>/dev/null; then
    echo "verify: --timeout-ms 0 was not rejected" >&2; exit 1
fi
"$kmm" search --index "$tmp/ref.idx" --pattern "$pattern" -k 2 --timeout-ms 60000 \
    > "$tmp/hits-deadline.tsv" 2>/dev/null
cmp "$tmp/hits.tsv" "$tmp/hits-deadline.tsv"

echo "== chaos smoke: daemon survives injected worker panics =="
"$kmm" serve --index "$tmp/ref.idx" --addr 127.0.0.1:0 --threads 2 -k 2 \
    --port-file "$tmp/port-chaos" --failpoints 'pool.worker.panic=after1.panic' \
    2> "$tmp/serve-chaos.log" &
chaos_pid=$!
for _ in $(seq 1 100); do
    [ -s "$tmp/port-chaos" ] && break
    sleep 0.1
done
[ -s "$tmp/port-chaos" ] || { echo "verify: chaos serve never wrote its port file" >&2; exit 1; }
port=$(cat "$tmp/port-chaos")
# The first hit is dormant, then every request panics inside the worker;
# the daemon answers 500 each time instead of dying. Capture responses
# into variables (grep -q on a live pipe races SIGPIPE under pipefail).
resp=$(http_get /healthz)
echo "$resp" | grep -q "200 OK"
resp=$(http_get /healthz)
echo "$resp" | grep -q "500 Internal Server Error"
resp=$(http_get /healthz)
echo "$resp" | grep -q "panicked"
kill "$chaos_pid" 2>/dev/null || true
wait "$chaos_pid" 2>/dev/null || true

echo "== chaos smoke: slow handler + per-request deadline =="
"$kmm" serve --index "$tmp/ref.idx" --addr 127.0.0.1:0 --threads 2 -k 2 \
    --port-file "$tmp/port-slow" --failpoints 'serve.handler.slow=sleep100' \
    2> "$tmp/serve-slow.log" &
slow_pid=$!
for _ in $(seq 1 100); do
    [ -s "$tmp/port-slow" ] && break
    sleep 0.1
done
[ -s "$tmp/port-slow" ] || { echo "verify: slow serve never wrote its port file" >&2; exit 1; }
port=$(cat "$tmp/port-slow")
# The injected latency delays but does not fail requests...
resp=$(http_get /healthz)
echo "$resp" | grep -q "200 OK"
# ...and an already-expired per-request deadline returns 504 carrying
# the partial-results marker, ticking the timeout counter.
http_post /search "{\"pattern\": \"$pattern\", \"k\": 2, \"timeout_ms\": 0}" \
    > "$tmp/http-timeout.json"
grep -q "504 Gateway Timeout" "$tmp/http-timeout.json"
grep -q '"truncated": true' "$tmp/http-timeout.json"
resp=$(http_get /metrics)
echo "$resp" | grep -Eq '^kmm_search_timeouts_total [1-9]'
resp=$(http_post /shutdown "")
echo "$resp" | grep -q "200 OK"
wait "$slow_pid"
grep -q "served" "$tmp/serve-slow.log"

echo "== bench regression gate =="
# Two identical baseline runs must agree bit-for-bit on every
# deterministic counter (timing is reported but not gated)...
target/release/experiments baseline --out-dir "$tmp/base-a" > /dev/null
target/release/experiments baseline --out-dir "$tmp/base-b" > /dev/null
"$kmm" bench diff "$tmp/base-a/BENCH_baseline.json" "$tmp/base-b/BENCH_baseline.json" \
    --assert-identical 2> "$tmp/diff-repeat.txt"
grep -q "deterministic counters: identical" "$tmp/diff-repeat.txt"
# ...and the fresh run must stay within budget of the committed baseline.
"$kmm" bench diff BENCH_baseline.json "$tmp/base-a/BENCH_baseline.json" \
    --fail-on-regress 15 2> "$tmp/diff-committed.txt"
grep -q "PASS" "$tmp/diff-committed.txt"
# The gate actually gates: forcing the rank checkpoint rate to 4 roughly
# doubles the rank-block overhead bytes, which must trip the 15% budget.
KMM_BASELINE_OCC_RATE=4 target/release/experiments baseline \
    --out-dir "$tmp/base-inject" > /dev/null
if "$kmm" bench diff "$tmp/base-a/BENCH_baseline.json" \
    "$tmp/base-inject/BENCH_baseline.json" \
    --fail-on-regress 15 2> "$tmp/diff-inject.txt"; then
    echo "verify: injected occ-rate regression was not caught" >&2; exit 1
fi
grep -q "REGRESSION" "$tmp/diff-inject.txt"
grep -q "index.rank_overhead_bytes" "$tmp/diff-inject.txt"

echo "== explain depth-profile gate (BENCH_explain.json) =="
# The explain experiment re-derives the committed per-depth pruning
# profile; kmm bench diff then gates every dNN.* counter like any other.
target/release/experiments explain --out-dir "$tmp/bench" > "$tmp/explain-bench.txt"
grep -q "pr.budget" "$tmp/explain-bench.txt"
test -s "$tmp/bench/BENCH_explain.json"
python3 -c "
import json
doc = json.load(open('$tmp/bench/BENCH_explain.json'))
assert doc['schema'] == 'kmm-bench/v1', doc['schema']
assert {r['method'] for r in doc['records']} == {'BWT', 'A(.)'}, doc['records']
assert sorted({r['k'] for r in doc['records']}) == [1, 2, 3]
for r in doc['records']:
    assert any(s.endswith('.expanded') for s in r['stats']), r['method']
    assert any('.pruned_' in s for s in r['stats']), r['method']
" || { echo "verify: BENCH_explain.json records are wrong" >&2; exit 1; }
"$kmm" bench diff BENCH_explain.json "$tmp/bench/BENCH_explain.json" \
    --fail-on-regress 15 2> "$tmp/diff-explain.txt"
grep -q "PASS" "$tmp/diff-explain.txt"

echo "== SIMD/scalar bit-identity: KMM_NO_SIMD=1 changes nothing =="
# The scalar fallback must produce the same hits and the same
# deterministic counters as the dispatched kernel, bit for bit.
KMM_NO_SIMD=1 "$kmm" search --index "$tmp/ref.idx" --pattern "$pattern" -k 2 \
    > "$tmp/hits-nosimd.tsv" 2>/dev/null
cmp "$tmp/hits.tsv" "$tmp/hits-nosimd.tsv"
KMM_NO_SIMD=1 target/release/experiments baseline --out-dir "$tmp/base-nosimd" > /dev/null
"$kmm" bench diff "$tmp/base-a/BENCH_baseline.json" \
    "$tmp/base-nosimd/BENCH_baseline.json" \
    --assert-identical 2> "$tmp/diff-nosimd.txt"
grep -q "deterministic counters: identical" "$tmp/diff-nosimd.txt"

echo "== kmm serve --mmap: zero-copy open, same answers =="
"$kmm" serve --index "$tmp/ref.idx" --addr 127.0.0.1:0 --threads 2 -k 2 \
    --mmap --port-file "$tmp/port-mmap" 2> "$tmp/serve-mmap.log" &
mmap_pid=$!
for _ in $(seq 1 100); do
    [ -s "$tmp/port-mmap" ] && break
    sleep 0.1
done
[ -s "$tmp/port-mmap" ] || { echo "verify: mmap serve never wrote its port file" >&2; exit 1; }
port=$(cat "$tmp/port-mmap")
# The cold-start log line names the load mode; on linux it is mmap with
# zero read bytes, and /stats.json carries index.load.mode = 2.
grep -q "index opened via" "$tmp/serve-mmap.log"
resp=$(http_get /stats.json)
echo "$resp" | grep -q '"index.load.mode": 2'
echo "$resp" | grep -q '"index.load.io_bytes": 0'
# Searches against the mapped index match the CLI (read-path) hits.
http_post /search "{\"pattern\": \"$pattern\", \"k\": 2}" > "$tmp/http-mmap.json"
mmap_positions=$(grep -o '"position": [0-9]*' "$tmp/http-mmap.json" \
    | grep -o '[0-9]*' | sort -n | tr '\n' ',')
if [ "$cli_positions" != "$mmap_positions" ]; then
    echo "verify: --mmap /search ($mmap_positions) != CLI search ($cli_positions)" >&2
    exit 1
fi
resp=$(http_post /shutdown "")
echo "$resp" | grep -q "200 OK"
wait "$mmap_pid"

echo "== index upgrade + corruption handling =="
# Upgrading a current-format index is a clean no-op.
"$kmm" index upgrade --index "$tmp/ref.idx" 2> "$tmp/upgrade.txt"
grep -q "nothing to do" "$tmp/upgrade.txt"
# A flipped byte in the section table is a typed error on both the read
# path and the mmap path — never a panic or garbage results.
cp "$tmp/ref.idx" "$tmp/ref-corrupt.idx"
python3 -c "
with open('$tmp/ref-corrupt.idx', 'r+b') as f:
    f.seek(17)
    b = f.read(1)
    f.seek(17)
    f.write(bytes([b[0] ^ 0xff]))
"
if "$kmm" search --index "$tmp/ref-corrupt.idx" --pattern "$pattern" 2> "$tmp/corrupt.txt"; then
    echo "verify: corrupt index was not rejected (read path)" >&2; exit 1
fi
grep -Eiq "corrupt|malformed|magic|version" "$tmp/corrupt.txt"
if timeout 30 "$kmm" serve --index "$tmp/ref-corrupt.idx" --mmap --addr 127.0.0.1:0 \
    2> "$tmp/corrupt-mmap.txt"; then
    echo "verify: corrupt index was not rejected (mmap path)" >&2; exit 1
fi
grep -Eiq "corrupt|malformed|magic|version" "$tmp/corrupt-mmap.txt"
# Corruption under an armed failpoint still reports the injected fault
# first — the failpoint layer sits in front of the open.
if KMM_FAILPOINTS='index.load.io=err' "$kmm" search --index "$tmp/ref-corrupt.idx" \
    --pattern "$pattern" 2> "$tmp/corrupt-fp.txt"; then
    echo "verify: corrupt index + failpoint did not fail" >&2; exit 1
fi
grep -q "injected fault" "$tmp/corrupt-fp.txt"

echo "== coldstart artifact: mmap does zero startup I/O =="
target/release/experiments coldstart --scale 0.02 --out-dir "$tmp/bench" \
    > "$tmp/coldstart.txt"
test -s "$tmp/bench/BENCH_coldstart.json"
python3 -c "
import json
doc = json.load(open('$tmp/bench/BENCH_coldstart.json'))
assert doc['schema'] == 'kmm-bench/v1', doc['schema']
reads = [r for r in doc['records'] if r['method'] == 'open_read']
maps = [r for r in doc['records'] if r['method'] == 'open_mmap']
assert reads and maps, doc['records']
for r in reads:
    assert r['stats']['load_io_bytes'] == r['stats']['load_file_bytes'] > 0, r
for r in maps:
    if r['stats']['load_borrowed'] == 1:
        assert r['stats']['load_io_bytes'] == 0, r
        assert r['stats']['load_bytes_mapped'] == r['stats']['load_file_bytes'], r
" || { echo "verify: BENCH_coldstart.json byte counters are wrong" >&2; exit 1; }

echo "== event log + memory accounting smoke test =="
# --log-json writes structured JSON lines; --quiet silences stderr events.
"$kmm" search --index "$tmp/ref.idx" --pattern "$pattern" -k 2 --stats \
    --log-json "$tmp/events.jsonl" > /dev/null 2> "$tmp/summary-mem.txt"
# With the default alloc-track feature, --stats reports per-phase heap.
grep -q "heap:" "$tmp/summary-mem.txt"
grep -q "load" "$tmp/summary-mem.txt"
# The serve daemon logs startup/access/shutdown as structured events.
"$kmm" serve --index "$tmp/ref.idx" --addr 127.0.0.1:0 --threads 2 -k 2 \
    --port-file "$tmp/port-events" --log-json "$tmp/serve-events.jsonl" \
    2> "$tmp/serve-events.log" &
events_pid=$!
for _ in $(seq 1 100); do
    [ -s "$tmp/port-events" ] && break
    sleep 0.1
done
[ -s "$tmp/port-events" ] || { echo "verify: events serve never wrote its port file" >&2; exit 1; }
port=$(cat "$tmp/port-events")
resp=$(http_get /healthz)
echo "$resp" | grep -q "200 OK"
# /metrics now carries the allocator gauges.
resp=$(http_get /metrics)
echo "$resp" | grep -q "kmm_mem_peak_bytes"
# A bad /search answers with a JSON error body carrying a request id...
resp=$(http_post /search '{"k": 1}')
echo "$resp" | grep -q '"request_id": "req-'
req_id=$(echo "$resp" | grep -o '"request_id": "req-[0-9]*"' | grep -o 'req-[0-9]*')
resp=$(http_post /shutdown "")
echo "$resp" | grep -q "200 OK"
wait "$events_pid"
# ...and the same id appears on the access-log line for that request,
# tagged with the handler outcome (ok / error / shed / truncated).
grep -q '"target":"serve.access"' "$tmp/serve-events.jsonl"
grep '"target":"serve.access"' "$tmp/serve-events.jsonl" | grep -q '"outcome":"ok"'
grep "$req_id" "$tmp/serve-events.jsonl" | grep -q '"status":"400"'
grep "$req_id" "$tmp/serve-events.jsonl" | grep -q '"outcome":"error"'
grep -q "listening" "$tmp/serve-events.jsonl"
grep -q "shutdown" "$tmp/serve-events.jsonl"

echo "== keep-alive smoke: two requests, one socket =="
"$kmm" serve --index "$tmp/ref.idx" --addr 127.0.0.1:0 --threads 2 -k 2 \
    --port-file "$tmp/port-ka" 2> "$tmp/serve-ka.log" &
ka_pid=$!
for _ in $(seq 1 100); do
    [ -s "$tmp/port-ka" ] && break
    sleep 0.1
done
[ -s "$tmp/port-ka" ] || { echo "verify: keep-alive serve never wrote its port file" >&2; exit 1; }
port=$(cat "$tmp/port-ka")
# Two pipelined requests in one write; HTTP/1.1 defaults to keep-alive,
# the second carries Connection: close so the read drains to EOF.
exec 3<>"/dev/tcp/127.0.0.1/$port"
printf 'GET /healthz HTTP/1.1\r\nHost: v\r\n\r\nGET /healthz HTTP/1.1\r\nHost: v\r\nConnection: close\r\n\r\n' >&3
ka_resp=$(cat <&3)
exec 3<&- 3>&-
[ "$(echo "$ka_resp" | grep -c "200 OK")" = 2 ] \
    || { echo "verify: keep-alive socket did not serve both requests" >&2; exit 1; }
echo "$ka_resp" | grep -q "Connection: keep-alive"
echo "$ka_resp" | grep -q "Connection: close"
resp=$(http_get /metrics)
echo "$resp" | grep -Eq '^kmm_serve_keepalive_reuses_total [1-9]'

echo "== slow-loris eviction: half a header draws a 408 =="
# Same daemon, but the loris needs a tight idle window; restart with one.
resp=$(http_post /shutdown "")
echo "$resp" | grep -q "200 OK"
wait "$ka_pid"
"$kmm" serve --index "$tmp/ref.idx" --addr 127.0.0.1:0 --threads 2 -k 2 \
    --idle-timeout-ms 300 --port-file "$tmp/port-loris" 2> "$tmp/serve-loris.log" &
loris_pid=$!
for _ in $(seq 1 100); do
    [ -s "$tmp/port-loris" ] && break
    sleep 0.1
done
[ -s "$tmp/port-loris" ] || { echo "verify: loris serve never wrote its port file" >&2; exit 1; }
port=$(cat "$tmp/port-loris")
# Send half a request line and stop: the idle deadline must evict the
# connection with a 408 instead of holding the slot forever.
exec 3<>"/dev/tcp/127.0.0.1/$port"
printf 'GET /hea' >&3
loris_resp=$(cat <&3)
exec 3<&- 3>&-
echo "$loris_resp" | grep -q "408 Request Timeout"
echo "$loris_resp" | grep -q "Connection: close"
resp=$(http_get /metrics)
echo "$resp" | grep -Eq '^kmm_serve_shed_stall_total [1-9]'
resp=$(http_post /shutdown "")
echo "$resp" | grep -q "200 OK"
wait "$loris_pid"

echo "== per-tenant admission: --tenant-rate 1 meters each tenant =="
"$kmm" serve --index "$tmp/ref.idx" --addr 127.0.0.1:0 --threads 2 -k 2 \
    --tenant-rate 1 --port-file "$tmp/port-tenant" 2> "$tmp/serve-tenant.log" &
tenant_pid=$!
for _ in $(seq 1 100); do
    [ -s "$tmp/port-tenant" ] && break
    sleep 0.1
done
[ -s "$tmp/port-tenant" ] || { echo "verify: tenant serve never wrote its port file" >&2; exit 1; }
port=$(cat "$tmp/port-tenant")
http_tenant() {
    exec 3<>"/dev/tcp/127.0.0.1/$port"
    printf 'GET /healthz HTTP/1.1\r\nHost: v\r\nX-Kmm-Tenant: %s\r\nConnection: close\r\n\r\n' "$1" >&3
    cat <&3
    exec 3<&- 3>&-
}
# alice's bucket holds one token: first request lands, the immediate
# second draws 429 + Retry-After without closing her out for good.
resp=$(http_tenant alice)
echo "$resp" | grep -q "200 OK"
resp=$(http_tenant alice)
echo "$resp" | grep -q "429 Too Many Requests"
echo "$resp" | grep -q "Retry-After:"
# bob is a different bucket and sails through...
resp=$(http_tenant bob)
echo "$resp" | grep -q "200 OK"
# ...and the control plane is exempt from admission entirely.
resp=$(http_post /shutdown "")
echo "$resp" | grep -q "200 OK"
wait "$tenant_pid"
grep -q "served" "$tmp/serve-tenant.log"

echo "== servesoak gate (BENCH_serve.json) =="
# The soak re-derives the committed admission counters over live TCP;
# every gated value is a pure function of the request sequence.
target/release/experiments servesoak --out-dir "$tmp/bench" > "$tmp/servesoak.txt"
grep -q "keepalive" "$tmp/servesoak.txt"
test -s "$tmp/bench/BENCH_serve.json"
"$kmm" bench diff BENCH_serve.json "$tmp/bench/BENCH_serve.json" \
    --fail-on-regress 15 2> "$tmp/diff-serve.txt"
grep -q "PASS" "$tmp/diff-serve.txt"

echo "== bidir cross-method smoke: a, bwt and bidir agree bit for bit =="
# A --bidir index carries the reverse-BWT mirror as optional v3 sections;
# scheme-driven bidirectional search over it must reproduce the
# unidirectional hits byte for byte.
"$kmm" index --reference "$tmp/ref.fa" -o "$tmp/ref-bd.idx" --bidir \
    2> "$tmp/index-bd.txt"
grep -q "reverse-index" "$tmp/index-bd.txt"
for m in a bwt bidir; do
    "$kmm" search --index "$tmp/ref-bd.idx" --pattern "$pattern" -k 2 \
        --method "$m" > "$tmp/hits-$m.tsv" 2>/dev/null
done
cmp "$tmp/hits-a.tsv" "$tmp/hits-bwt.tsv"
cmp "$tmp/hits-a.tsv" "$tmp/hits-bidir.tsv"
cmp "$tmp/hits.tsv" "$tmp/hits-bidir.tsv"
# Without --method, explain over a mirrored index adds the Bidir row;
# over the plain index it must not (the mirror is opt-in).
"$kmm" explain --index "$tmp/ref-bd.idx" --pattern "$pattern" -k 2 \
    > "$tmp/explain-bd.txt" 2>/dev/null
grep -q "Bidir" "$tmp/explain-bd.txt"
if grep -q "Bidir" "$tmp/explain.txt"; then
    echo "verify: plain index explain unexpectedly ran Bidir" >&2; exit 1
fi

echo "== bidir bench gate (BENCH_bidir.json) =="
# Two identical sweeps must agree bit-for-bit on every deterministic
# counter, and the fresh run must stay within budget of the committed
# artifact — including the headline rank-block / node-count wins.
target/release/experiments bidir --out-dir "$tmp/bidir-a" > "$tmp/bidirbench.txt"
grep -q "Bidir rank blocks" "$tmp/bidirbench.txt"
target/release/experiments bidir --out-dir "$tmp/bidir-b" > /dev/null
"$kmm" bench diff "$tmp/bidir-a/BENCH_bidir.json" "$tmp/bidir-b/BENCH_bidir.json" \
    --assert-identical 2> "$tmp/diff-bidir-repeat.txt"
grep -q "deterministic counters: identical" "$tmp/diff-bidir-repeat.txt"
"$kmm" bench diff BENCH_bidir.json "$tmp/bidir-a/BENCH_bidir.json" \
    --fail-on-regress 15 2> "$tmp/diff-bidir.txt"
grep -q "PASS" "$tmp/diff-bidir.txt"

echo "== bidir planted regression: pigeonhole schemes must trip the gate =="
# KMM_BIDIR_PIGEONHOLE=1 swaps the optimum search schemes for the naive
# pigeonhole partition; the extra tree nodes it visits must blow the
# nodes_visited budget against the committed artifact.
KMM_BIDIR_PIGEONHOLE=1 target/release/experiments bidir \
    --out-dir "$tmp/bidir-pigeon" > /dev/null
if "$kmm" bench diff BENCH_bidir.json "$tmp/bidir-pigeon/BENCH_bidir.json" \
    --fail-on-regress 5 2> "$tmp/diff-pigeon.txt"; then
    echo "verify: pigeonhole scheme regression was not caught" >&2; exit 1
fi
grep -q "REGRESSION" "$tmp/diff-pigeon.txt"
grep "nodes_visited" "$tmp/diff-pigeon.txt" | grep -q "REGRESSION"
grep -q "offending counters:" "$tmp/diff-pigeon.txt"

echo "verify: OK"
