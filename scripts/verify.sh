#!/usr/bin/env bash
# Repo verification: the tier-1 gate (ROADMAP.md), formatting, the full
# workspace test suite, and an end-to-end `kmm search --stats` smoke test
# on a tiny synthetic genome.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo "== cargo fmt --check =="
cargo fmt --check

echo "== workspace tests =="
cargo test --workspace -q

echo "== kmm search --stats smoke test =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
kmm=target/release/kmm
"$kmm" generate --genome cmerolae --scale 0.02 -o "$tmp/ref.fa"
"$kmm" index --reference "$tmp/ref.fa" -o "$tmp/ref.idx"
# A pattern lifted from the reference itself (second FASTA line, first
# 40 bases) is guaranteed to occur at least once.
pattern=$(sed -n 2p "$tmp/ref.fa" | cut -c1-40)
"$kmm" search --index "$tmp/ref.idx" --pattern "$pattern" -k 2 \
    --stats --stats-json "$tmp/stats.json" > "$tmp/hits.tsv" 2> "$tmp/summary.txt"
grep -q "occurrences" "$tmp/summary.txt"
grep -q "search.queries" "$tmp/summary.txt"
test -s "$tmp/hits.tsv"
# The JSON artifact must carry the schema tag and all three stages.
for needle in kmm-telemetry/v1 index.load preprocess.rarray search.query; do
    grep -q "$needle" "$tmp/stats.json"
done

echo "verify: OK"
