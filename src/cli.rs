//! The `kmm` command-line tool: generate / simulate / index / map /
//! search, as a thin pipeline over the library. All subcommand logic
//! lives here (unit-testable); `src/bin/kmm.rs` only parses `argv`.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

use kmm_bwt::{FmBuildConfig, FmIndex, OpenStats};
use kmm_core::{KMismatchIndex, Method};
use kmm_dna::genome::ReferenceGenome;
use kmm_dna::{fasta, fastq};
use kmm_par::ThreadPool;
use kmm_telemetry::alloc::{fmt_bytes, mem_stats, phase_scope, MemPhase};
use kmm_telemetry::{
    chrome_trace_json, Counter, MetricsRecorder, MetricsSnapshot, NoopRecorder, Recorder,
    TraceConfig, TraceRecorder,
};

/// CLI-level errors with user-facing messages.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("i/o error: {e}"))
    }
}

/// Result alias for CLI operations.
pub type CliResult<T> = Result<T, CliError>;

fn err<T>(msg: impl Into<String>) -> CliResult<T> {
    Err(CliError(msg.into()))
}

/// Parse a method name as accepted by `--method`.
pub fn parse_method(name: &str) -> CliResult<Method> {
    match name {
        "a" | "algorithm-a" => Ok(Method::ALGORITHM_A),
        "a-noreuse" => Ok(Method::AlgorithmA { reuse: false }),
        "bwt" => Ok(Method::Bwt { use_phi: true }),
        "bwt-nophi" => Ok(Method::Bwt { use_phi: false }),
        "bidir" | "bidirectional" => Ok(Method::Bidirectional),
        "amir" => Ok(Method::Amir),
        "cole" => Ok(Method::Cole),
        "kangaroo" => Ok(Method::Kangaroo),
        "naive" => Ok(Method::Naive),
        "seed" | "seed-filter" => Ok(Method::SeedFilter),
        other => err(format!(
            "unknown method '{other}' (expected a|bwt|bwt-nophi|bidir|amir|cole|kangaroo|naive|seed)"
        )),
    }
}

/// Parse a reference-genome name for `generate`.
pub fn parse_genome(name: &str) -> CliResult<ReferenceGenome> {
    match name.to_ascii_lowercase().as_str() {
        "rat" => Ok(ReferenceGenome::Rat),
        "zebrafish" => Ok(ReferenceGenome::Zebrafish),
        "rat-chr1" => Ok(ReferenceGenome::RatChr1),
        "celegans" | "c-elegans" => Ok(ReferenceGenome::CElegans),
        "cmerolae" | "c-merolae" => Ok(ReferenceGenome::CMerolae),
        other => err(format!(
            "unknown genome '{other}' (expected rat|zebrafish|rat-chr1|celegans|cmerolae)"
        )),
    }
}

/// `kmm generate`: synthesise a genome and write it as FASTA.
pub fn generate(genome: ReferenceGenome, scale: f64, out: &Path) -> CliResult<String> {
    if scale <= 0.0 || scale > 10.0 {
        return err("--scale must be in (0, 10]");
    }
    let seq = genome.generate_scaled(scale);
    let rec = fasta::FastaRecord {
        id: format!("{} scale={scale}", genome.name()),
        seq,
    };
    let mut w = BufWriter::new(File::create(out)?);
    fasta::write_fasta(&mut w, &[rec])?;
    w.flush()?;
    Ok(format!(
        "wrote {} ({} bp)",
        out.display(),
        genome.generate_scaled(scale).len()
    ))
}

fn load_fasta_single(path: &Path) -> CliResult<Vec<u8>> {
    let recs = fasta::read_fasta(BufReader::new(File::open(path)?))
        .map_err(|e| CliError(format!("{}: {e}", path.display())))?;
    if recs.is_empty() {
        return err(format!("{}: no FASTA records", path.display()));
    }
    // Concatenate multi-record references (chromosomes).
    let mut seq = Vec::new();
    for r in recs {
        seq.extend(r.seq);
    }
    Ok(seq)
}

/// `kmm simulate`: sample wgsim-style reads from a FASTA reference and
/// write them as FASTQ.
pub fn simulate(
    reference: &Path,
    count: usize,
    read_len: usize,
    seed: u64,
    out: &Path,
) -> CliResult<String> {
    let genome = load_fasta_single(reference)?;
    if genome.len() < read_len {
        return err("reference shorter than the read length");
    }
    let reads = kmm_dna::reads::ReadSimulator::new(
        &genome,
        kmm_dna::reads::ReadSimConfig::paper(read_len),
        seed,
    )
    .reads(count);
    let records = fastq::simulated_to_fastq(&reads, 35);
    let mut w = BufWriter::new(File::create(out)?);
    fastq::write_fastq(&mut w, &records)?;
    w.flush()?;
    Ok(format!(
        "wrote {} ({count} reads x {read_len} bp)",
        out.display()
    ))
}

/// `kmm index`: build the BWT index of a FASTA reference and save it.
///
/// Multi-record FASTA files are concatenated; positions reported by `map`
/// and `search` are then concatenation offsets, and matches may straddle
/// record boundaries. Pipelines that need per-chromosome coordinates and
/// boundary filtering should use `kmm_core::MultiIndex` directly (the
/// saved index format holds a single text).
pub fn index(reference: &Path, out: &Path, threads: usize) -> CliResult<String> {
    index_opts(reference, out, threads, false)
}

/// [`index`] with the `--bidir` option: additionally build the mirror
/// (forward-text) rank structure and serialise it into the same v3
/// container as optional sections, so a loaded index can serve
/// [`Method::Bidirectional`] without reconstructing the text.
pub fn index_opts(reference: &Path, out: &Path, threads: usize, bidir: bool) -> CliResult<String> {
    let genome = load_fasta_single(reference)?;
    let idx = {
        let _build = phase_scope(MemPhase::Build);
        let idx = KMismatchIndex::with_config(
            genome,
            FmBuildConfig::default().with_threads(threads.max(1)),
        );
        if bidir {
            // Materialise the mirror inside the Build phase so the heap
            // accounting attributes its checkpoints to index construction.
            idx.mirror();
        }
        idx
    };
    atomic_save(out, |w| {
        match bidir {
            true => idx.fm().save_with_mirror(idx.mirror(), w),
            false => idx.fm().save(w),
        }
        .map_err(std::io::Error::other)
    })?;
    let mirror_bytes = if bidir { idx.mirror_heap_bytes() } else { None };
    let mut summary = format!(
        "indexed {} bp -> {} ({} bytes of rank/SA structures: \
         {} packed text + {} block checkpoints + {} SA samples{})",
        idx.len(),
        out.display(),
        idx.fm().heap_bytes() + mirror_bytes.unwrap_or(0),
        idx.fm().rank_payload_bytes(),
        idx.fm().rank_overhead_bytes(),
        idx.fm().sampled_sa_bytes(),
        match mirror_bytes {
            Some(b) => format!(" + {b} reverse-index rank structure"),
            None => String::new(),
        },
    );
    let mem = mem_stats();
    if mem.enabled {
        let build = mem.phase(MemPhase::Build);
        summary.push_str(&format!(
            "\nheap: build allocated {} over {} allocations (peak live {}); process peak {}",
            fmt_bytes(build.allocated_bytes),
            build.allocations,
            fmt_bytes(build.peak_live_bytes),
            fmt_bytes(mem.peak_bytes),
        ));
    }
    Ok(summary)
}

/// Write a file atomically: the payload goes to `<path>.tmp`, is fsynced,
/// and is renamed over `path` only once complete — a crash mid-save never
/// leaves a truncated file at the target, and a pre-existing index there
/// survives a failed re-index untouched. The `index.save.io` failpoint
/// injects write failures for testing the cleanup path.
pub fn atomic_save(
    path: &Path,
    write: impl FnOnce(&mut BufWriter<File>) -> std::io::Result<()>,
) -> CliResult<()> {
    let tmp = {
        let mut os = path.as_os_str().to_os_string();
        os.push(".tmp");
        PathBuf::from(os)
    };
    let attempt = (|| -> std::io::Result<()> {
        let mut w = BufWriter::new(File::create(&tmp)?);
        kmm_faults::io_gate("index.save.io")?;
        write(&mut w)?;
        w.flush()?;
        w.into_inner()
            .map_err(|e| std::io::Error::other(format!("flush failed: {e}")))?
            .sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if let Err(e) = attempt {
        let _ = std::fs::remove_file(&tmp);
        return Err(CliError(format!("cannot save {}: {e}", path.display())));
    }
    Ok(())
}

/// Load a saved index. The forward text is *not* reconstructed here —
/// [`KMismatchIndex`] materialises it lazily if a scanning method needs
/// it, so the FM-backed serving paths start in time independent of the
/// O(n·occ) LF-walk.
pub fn load_index(path: &Path) -> CliResult<KMismatchIndex> {
    load_index_recorded(path, &NoopRecorder)
}

/// [`load_index`] with telemetry: deserialisation is timed as the
/// `index.load` phase.
pub fn load_index_recorded<R: Recorder>(path: &Path, recorder: &R) -> CliResult<KMismatchIndex> {
    open_index_recorded(path, false, recorder).map(|(idx, _)| idx)
}

/// Open a saved index, optionally zero-copy, returning the deterministic
/// [`OpenStats`] alongside. With `prefer_mmap` the file is mapped
/// read-only and the index borrows the mapping (O(1) in the index size,
/// table-verified); otherwise it is read with full checksum verification.
/// Either way the `index.load.*` gauges land on `recorder`.
pub fn open_index_recorded<R: Recorder>(
    path: &Path,
    prefer_mmap: bool,
    recorder: &R,
) -> CliResult<(KMismatchIndex, OpenStats)> {
    let _load = phase_scope(MemPhase::Load);
    // Failpoint: `index.load.io=err` makes every load fail the way a
    // vanished/unreadable file would.
    kmm_faults::io_gate("index.load.io")
        .map_err(|e| CliError(format!("{}: {e}", path.display())))?;
    let (fm, mirror, stats) = {
        let _span = recorder.span(kmm_telemetry::Phase::IndexLoad);
        FmIndex::open_path_with_mirror(path, prefer_mmap)
            .map_err(|e| CliError(format!("{}: {e}", path.display())))?
    };
    // Footprint gauges for `--stats`: the rank structure's packed-text
    // payload vs its interleaved checkpoint overhead vs the SA samples,
    // plus how the bytes got here (read vs mmap).
    recorder.add(Counter::RankPayloadBytes, fm.rank_payload_bytes() as u64);
    recorder.add(Counter::RankOverheadBytes, fm.rank_overhead_bytes() as u64);
    recorder.add(Counter::SampledSaBytes, fm.sampled_sa_bytes() as u64);
    recorder.add(Counter::IndexLoadIoBytes, stats.io_bytes);
    recorder.add(Counter::IndexLoadMappedBytes, stats.bytes_mapped);
    recorder.add(Counter::IndexLoadMode, stats.mode.as_counter());
    Ok((KMismatchIndex::from_fm_with_mirror(fm, mirror), stats))
}

/// `kmm index upgrade`: convert a legacy v2 index file to the current
/// v3 container in place (or to `--out`). The conversion is a pure
/// re-serialisation — no rebuild — and goes through [`atomic_save`], so
/// a crash mid-upgrade leaves the original file intact.
pub fn index_upgrade(path: &Path, out: Option<&Path>) -> CliResult<String> {
    let file = File::open(path).map_err(|e| CliError(format!("{}: {e}", path.display())))?;
    let fm = match FmIndex::load_legacy_v2(BufReader::new(file)) {
        Ok(fm) => fm,
        Err(kmm_bwt::SerializeError::BadVersion { found, .. })
            if found == FmIndex::FORMAT_VERSION =>
        {
            return Ok(format!(
                "{} is already a v{found} index; nothing to do",
                path.display()
            ));
        }
        Err(e) => return Err(CliError(format!("{}: {e}", path.display()))),
    };
    let target = out.unwrap_or(path);
    atomic_save(target, |w| fm.save(w).map_err(std::io::Error::other))?;
    Ok(format!(
        "upgraded {} (v{}) -> {} (v{}, {} bp)",
        path.display(),
        FmIndex::LEGACY_FORMAT_VERSION,
        target.display(),
        FmIndex::FORMAT_VERSION,
        fm.len() - 1,
    ))
}

/// Telemetry options for `kmm map` / `kmm search` (`--stats`,
/// `--stats-json PATH`, `--trace-out PATH`, `--slowest K`).
#[derive(Debug, Clone, Default)]
pub struct StatsOptions {
    /// Append the human-readable telemetry table to the summary
    /// (`--stats`).
    pub table: bool,
    /// Write the JSON metrics snapshot to this path (`--stats-json`).
    pub json_path: Option<PathBuf>,
    /// Write a Chrome trace-event JSON of every query's span tree to
    /// this path (`--trace-out`); load it in `chrome://tracing` or
    /// Perfetto.
    pub trace_out: Option<PathBuf>,
    /// Append a table of the K slowest queries to the summary
    /// (`--slowest K`).
    pub slowest: Option<usize>,
}

impl StatsOptions {
    /// Whether any telemetry output was requested.
    pub fn active(&self) -> bool {
        self.table || self.json_path.is_some() || self.tracing()
    }

    /// Whether per-query span collection is needed (trace export or
    /// slow-query table).
    pub fn tracing(&self) -> bool {
        self.trace_out.is_some() || self.slowest.is_some()
    }

    /// A [`TraceRecorder`] sized for these options.
    fn trace_recorder(&self) -> TraceRecorder {
        TraceRecorder::with_config(TraceConfig {
            flight_capacity: self
                .slowest
                .unwrap_or(TraceConfig::default().flight_capacity),
            ..TraceConfig::default()
        })
    }
}

/// Create `path` for writing, creating any missing parent directories;
/// failures name the offending path instead of surfacing a bare io
/// error.
pub(crate) fn create_output_file(path: &Path) -> CliResult<File> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() && !parent.exists() {
            std::fs::create_dir_all(parent).map_err(|e| {
                CliError(format!(
                    "cannot create directory {} for {}: {e}",
                    parent.display(),
                    path.display()
                ))
            })?;
        }
    }
    File::create(path).map_err(|e| CliError(format!("cannot create {}: {e}", path.display())))
}

/// Flush a metrics snapshot according to `opts`: write the JSON file if
/// requested and append the rendered table to `summary` if requested.
fn finish_stats(
    snap: &MetricsSnapshot,
    opts: &StatsOptions,
    summary: &mut String,
) -> CliResult<()> {
    if let Some(path) = &opts.json_path {
        let mut w = BufWriter::new(create_output_file(path)?);
        w.write_all(snap.to_json().to_pretty().as_bytes())?;
        w.flush()?;
        summary.push_str(&format!("\nstats json -> {}", path.display()));
    }
    if opts.table {
        summary.push('\n');
        summary.push_str(snap.render().trim_end());
        summary.push_str(&render_mem_stats());
    }
    Ok(())
}

/// Human-readable heap accounting for `--stats` tables: live/peak bytes
/// plus per-phase attribution from the counting allocator. One line
/// explains itself when the `alloc-track` feature is off.
fn render_mem_stats() -> String {
    let mem = mem_stats();
    if !mem.enabled {
        return "\nheap: allocation tracking disabled (alloc-track feature off)".to_string();
    }
    let mut out = format!(
        "\nheap: live {}  peak {}",
        fmt_bytes(mem.live_bytes),
        fmt_bytes(mem.peak_bytes)
    );
    for phase in MemPhase::ALL {
        let p = mem.phase(phase);
        if p.allocations == 0 {
            continue;
        }
        out.push_str(&format!(
            "\n  {:<18} allocated {:>10}  allocations {:>8}  peak live {:>10}",
            phase.name(),
            fmt_bytes(p.allocated_bytes),
            p.allocations,
            fmt_bytes(p.peak_live_bytes),
        ));
    }
    out
}

/// Flush tracing output according to `opts`: write the Chrome
/// trace-event file and/or append the slowest-queries table.
fn finish_trace(
    recorder: &TraceRecorder,
    opts: &StatsOptions,
    summary: &mut String,
) -> CliResult<()> {
    if let Some(path) = &opts.trace_out {
        let traces = recorder.traces();
        let spans: usize = traces.iter().map(|t| t.spans.len()).sum();
        let mut w = BufWriter::new(create_output_file(path)?);
        w.write_all(chrome_trace_json(&traces).to_pretty().as_bytes())?;
        w.flush()?;
        summary.push_str(&format!(
            "\ntrace -> {} ({} queries, {spans} spans",
            path.display(),
            traces.len()
        ));
        if recorder.dropped_traces() > 0 {
            summary.push_str(&format!(", {} dropped", recorder.dropped_traces()));
        }
        summary.push(')');
    }
    if let Some(kk) = opts.slowest {
        let slowest = recorder.flight().slowest();
        summary.push_str(&format!("\nslowest {} queries:", slowest.len().min(kk)));
        for (rank, t) in slowest.iter().take(kk).enumerate() {
            summary.push_str(&format!(
                "\n  #{:<2} {:>10.3}ms  {}",
                rank + 1,
                t.dur_ns as f64 / 1e6,
                t.label
            ));
        }
    }
    Ok(())
}

/// `kmm map`: align every FASTQ read against a saved index, fanning the
/// batch across `threads` workers (reports stay in input order and are
/// bit-identical at any thread count).
#[allow(clippy::too_many_arguments)]
pub fn map_reads(
    index_path: &Path,
    reads_path: &Path,
    k: usize,
    method: Method,
    both_strands: bool,
    threads: usize,
    timeout: Option<Duration>,
    stats: &StatsOptions,
    out: &mut dyn Write,
) -> CliResult<String> {
    if stats.tracing() {
        let recorder = stats.trace_recorder();
        let mut summary = map_reads_with(
            index_path,
            reads_path,
            k,
            method,
            both_strands,
            threads,
            timeout,
            &recorder,
            out,
        )?;
        finish_stats(&recorder.snapshot(), stats, &mut summary)?;
        finish_trace(&recorder, stats, &mut summary)?;
        Ok(summary)
    } else if stats.active() {
        let recorder = MetricsRecorder::new();
        let mut summary = map_reads_with(
            index_path,
            reads_path,
            k,
            method,
            both_strands,
            threads,
            timeout,
            &recorder,
            out,
        )?;
        finish_stats(&recorder.snapshot(), stats, &mut summary)?;
        Ok(summary)
    } else {
        map_reads_with(
            index_path,
            reads_path,
            k,
            method,
            both_strands,
            threads,
            timeout,
            &NoopRecorder,
            out,
        )
    }
}

/// [`map_reads`] against an explicit recorder.
#[allow(clippy::too_many_arguments)]
fn map_reads_with<R: Recorder + Sync>(
    index_path: &Path,
    reads_path: &Path,
    k: usize,
    method: Method,
    both_strands: bool,
    threads: usize,
    timeout: Option<Duration>,
    recorder: &R,
    out: &mut dyn Write,
) -> CliResult<String> {
    use kmm_core::{MapOutcome, MapperConfig, ReadMapper, Strand};
    let idx = load_index_recorded(index_path, recorder)?;
    let reads = fastq::read_fastq(BufReader::new(File::open(reads_path)?))
        .map_err(|e| CliError(format!("{}: {e}", reads_path.display())))?;
    let mapper = ReadMapper::new(
        &idx,
        MapperConfig {
            k,
            both_strands,
            method,
        },
    );
    let pool = ThreadPool::new(threads.max(1));
    let seqs: Vec<&[u8]> = reads.iter().map(|r| r.seq.as_slice()).collect();
    let _search = phase_scope(MemPhase::Search);
    let (reports, truncated) = match timeout {
        Some(per_read) => {
            let outcomes =
                mapper.map_batch_with_deadline_recorded(&seqs, &pool, per_read, recorder);
            let truncated = outcomes.iter().filter(|o| o.is_truncated()).count();
            (
                outcomes
                    .into_iter()
                    .map(kmm_core::Outcome::into_inner)
                    .collect::<Vec<_>>(),
                truncated,
            )
        }
        None => (mapper.map_batch_recorded(&seqs, &pool, recorder), 0),
    };
    writeln!(out, "#read\tposition\tstrand\tmismatches\tmapq")?;
    let mut mapped = 0usize;
    let mut unique = 0usize;
    let mut hits = 0usize;
    for (rec, report) in reads.iter().zip(&reports) {
        match &report.outcome {
            MapOutcome::Unmapped => continue,
            MapOutcome::Unique(_) => {
                mapped += 1;
                unique += 1;
            }
            MapOutcome::Multi(_) => mapped += 1,
        }
        for a in &report.all {
            hits += 1;
            writeln!(
                out,
                "{}\t{}\t{}\t{}\t{}",
                rec.id,
                a.position,
                if a.strand == Strand::Forward {
                    '+'
                } else {
                    '-'
                },
                a.mismatches,
                report.mapq
            )?;
        }
    }
    let mut summary = format!(
        "mapped {mapped}/{} reads ({unique} unique, {hits} hits) with {} at k={k}",
        reads.len(),
        method.label()
    );
    if truncated > 0 {
        summary.push_str(&format!(" [{truncated} reads truncated by deadline]"));
    }
    Ok(summary)
}

/// `kmm search`: ad-hoc pattern(s) against a saved index.
///
/// A single pattern prints `position\tmismatches` lines. With several
/// patterns (repeated `--pattern` flags) the batch fans out across
/// `threads` workers and each line is prefixed with the 0-based pattern
/// index: `pattern\tposition\tmismatches`. Output order is the input
/// pattern order at any thread count.
pub fn search_patterns(
    index_path: &Path,
    patterns_ascii: &[String],
    k: usize,
    method: Method,
    threads: usize,
    timeout: Option<Duration>,
    stats: &StatsOptions,
    out: &mut dyn Write,
) -> CliResult<String> {
    if stats.tracing() {
        let recorder = stats.trace_recorder();
        let mut summary = search_patterns_with(
            index_path,
            patterns_ascii,
            k,
            method,
            threads,
            timeout,
            &recorder,
            out,
        )?;
        finish_stats(&recorder.snapshot(), stats, &mut summary)?;
        finish_trace(&recorder, stats, &mut summary)?;
        Ok(summary)
    } else if stats.active() {
        let recorder = MetricsRecorder::new();
        let mut summary = search_patterns_with(
            index_path,
            patterns_ascii,
            k,
            method,
            threads,
            timeout,
            &recorder,
            out,
        )?;
        finish_stats(&recorder.snapshot(), stats, &mut summary)?;
        Ok(summary)
    } else {
        search_patterns_with(
            index_path,
            patterns_ascii,
            k,
            method,
            threads,
            timeout,
            &NoopRecorder,
            out,
        )
    }
}

/// Single-pattern convenience wrapper over [`search_patterns`].
pub fn search_pattern(
    index_path: &Path,
    pattern_ascii: &str,
    k: usize,
    method: Method,
    stats: &StatsOptions,
    out: &mut dyn Write,
) -> CliResult<String> {
    search_patterns(
        index_path,
        std::slice::from_ref(&pattern_ascii.to_string()),
        k,
        method,
        1,
        None,
        stats,
        out,
    )
}

/// [`search_patterns`] against an explicit recorder.
#[allow(clippy::too_many_arguments)]
fn search_patterns_with<R: Recorder + Sync>(
    index_path: &Path,
    patterns_ascii: &[String],
    k: usize,
    method: Method,
    threads: usize,
    timeout: Option<Duration>,
    recorder: &R,
    out: &mut dyn Write,
) -> CliResult<String> {
    if patterns_ascii.is_empty() {
        return err("at least one --pattern is required");
    }
    let idx = load_index_recorded(index_path, recorder)?;
    let patterns: Vec<Vec<u8>> = patterns_ascii
        .iter()
        .map(|p| kmm_dna::encode(p.as_bytes()).map_err(|e| CliError(format!("bad pattern: {e}"))))
        .collect::<CliResult<_>>()?;
    let pool = ThreadPool::new(threads.max(1));
    let _search = phase_scope(MemPhase::Search);
    let (per_pattern, stats, truncated) = match timeout {
        Some(per_query) => {
            let (outcomes, stats) = idx.search_batch_par_with_deadline_recorded(
                &patterns, k, method, &pool, per_query, recorder,
            );
            let truncated = outcomes.iter().filter(|o| o.is_truncated()).count();
            (
                outcomes
                    .into_iter()
                    .map(kmm_core::Outcome::into_inner)
                    .collect::<Vec<_>>(),
                stats,
                truncated,
            )
        }
        None => {
            let (per_pattern, stats) =
                idx.search_batch_par_recorded(&patterns, k, method, &pool, recorder);
            (per_pattern, stats, 0)
        }
    };
    let single = patterns.len() == 1;
    let mut total = 0usize;
    for (pi, occs) in per_pattern.iter().enumerate() {
        total += occs.len();
        for occ in occs {
            if single {
                writeln!(out, "{}\t{}", occ.position, occ.mismatches)?;
            } else {
                writeln!(out, "{pi}\t{}\t{}", occ.position, occ.mismatches)?;
            }
        }
    }
    let mut summary = if single {
        format!("{total} occurrences (stats: {stats})")
    } else {
        format!(
            "{total} occurrences across {} patterns (stats: {stats})",
            patterns.len()
        )
    };
    if truncated > 0 {
        summary.push_str(&format!(
            " [{truncated} queries truncated by deadline; results are partial]"
        ));
    }
    Ok(summary)
}

/// `kmm explain`: run one query once per method with an explain
/// recorder armed and print the query-plan-style cost comparison
/// (or the `kmm-explain/v1` JSON document with `json == true`).
///
/// The methods run serially whatever `--threads` says, and the verdict
/// is derived from deterministic work counters only — the printed
/// report is byte-identical across thread widths, SIMD kernels, and
/// machine load (pinned by `tests/explain.rs`).
pub fn explain_query(
    index_path: &Path,
    pattern_ascii: &str,
    k: usize,
    methods: &[Method],
    json: bool,
    out: &mut dyn Write,
) -> CliResult<String> {
    let idx = load_index(index_path)?;
    // An empty method list means "the default comparison set": the
    // paper's four methods, plus the bidirectional scheme search when
    // the index file carries the reverse-BWT mirror sections (without
    // them, bidir would first have to rebuild the mirror from the
    // reconstructed text — not a fair cost comparison).
    let methods: Vec<Method> = if methods.is_empty() {
        let mut set = Method::PAPER_SET.to_vec();
        if idx.has_mirror() {
            set.push(Method::Bidirectional);
        }
        set
    } else {
        methods.to_vec()
    };
    let pattern = kmm_dna::encode(pattern_ascii.as_bytes())
        .map_err(|e| CliError(format!("bad pattern: {e}")))?;
    if pattern.is_empty() {
        return err("--pattern must be non-empty");
    }
    let report = idx.explain(&pattern, k, &methods);
    if json {
        writeln!(out, "{}", report.to_json().to_pretty().trim_end())?;
    } else {
        write!(out, "{}", report.render_table())?;
    }
    Ok(match report.verdict() {
        Some(v) => format!(
            "explained {} method(s) at k={k}; winner: {}",
            report.methods.len(),
            v.winner
        ),
        None => format!(
            "explained {} method(s) at k={k}; no instrumented method compared",
            report.methods.len()
        ),
    })
}

/// `kmm bench diff`: compare two BENCH_*.json documents on timing and
/// deterministic counters. Returns the rendered report; when the gate
/// trips (regression beyond budget, or any delta under
/// `--assert-identical`) the report comes back as `Err` so the process
/// exits nonzero.
pub fn bench_diff(
    baseline: &Path,
    candidate: &Path,
    opts: &kmm_bench::diff::DiffOptions,
) -> CliResult<String> {
    let read = |path: &Path| -> CliResult<String> {
        std::fs::read_to_string(path).map_err(|e| CliError(format!("{}: {e}", path.display())))
    };
    let base_doc = kmm_bench::diff::parse_bench_doc(&read(baseline)?, "baseline")
        .map_err(|e| CliError(format!("{}: {e}", baseline.display())))?;
    let cand_doc = kmm_bench::diff::parse_bench_doc(&read(candidate)?, "candidate")
        .map_err(|e| CliError(format!("{}: {e}", candidate.display())))?;
    let report = kmm_bench::diff::diff_documents(&base_doc, &cand_doc, opts).map_err(CliError)?;
    let rendered = report.to_string();
    if report.failed() {
        Err(CliError(rendered))
    } else {
        Ok(rendered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("kmm-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn full_pipeline_generate_index_simulate_map() {
        let fa = tmp("pipeline.fa");
        let idxf = tmp("pipeline.idx");
        let fq = tmp("pipeline.fq");

        generate(ReferenceGenome::CMerolae, 0.05, &fa).unwrap();
        index(&fa, &idxf, 2).unwrap();
        simulate(&fa, 10, 60, 7, &fq).unwrap();

        let mut out = Vec::new();
        let summary = map_reads(
            &idxf,
            &fq,
            4,
            Method::ALGORITHM_A,
            true,
            2,
            None,
            &StatsOptions::default(),
            &mut out,
        )
        .unwrap();
        assert!(summary.starts_with("mapped"), "{summary}");
        let text = String::from_utf8(out).unwrap();
        // Header plus at least a few hits (reads come from the genome).
        assert!(text.lines().count() > 5, "{text}");
        assert!(text.starts_with("#read\tposition\tstrand\tmismatches\tmapq"));
        assert!(text
            .lines()
            .skip(1)
            .all(|l| l.contains('+') || l.contains('-')));
    }

    #[test]
    fn loaded_index_equals_fresh_index() {
        let fa = tmp("roundtrip.fa");
        let idxf = tmp("roundtrip.idx");
        generate(ReferenceGenome::CMerolae, 0.02, &fa).unwrap();
        index(&fa, &idxf, 2).unwrap();

        let genome = load_fasta_single(&fa).unwrap();
        let fresh = KMismatchIndex::new(genome.clone());
        let loaded = load_index(&idxf).unwrap();
        assert_eq!(loaded.text(), fresh.text());
        let probe = genome[100..160].to_vec();
        for k in [0usize, 2] {
            assert_eq!(
                loaded.search(&probe, k, Method::ALGORITHM_A).occurrences,
                fresh.search(&probe, k, Method::ALGORITHM_A).occurrences
            );
        }
    }

    #[test]
    fn bidir_index_roundtrips_and_serves_scheme_search() {
        let fa = tmp("bidir.fa");
        let idxf = tmp("bidir.idx");
        generate(ReferenceGenome::CMerolae, 0.02, &fa).unwrap();
        let summary = index_opts(&fa, &idxf, 2, true).unwrap();
        assert!(summary.contains("reverse-index"), "{summary}");

        // The loaded index carries the mirror (no text reconstruction
        // needed) and bidirectional answers match Algorithm A.
        let loaded = load_index(&idxf).unwrap();
        assert!(loaded.has_mirror());
        let genome = load_fasta_single(&fa).unwrap();
        let probe = genome[100..160].to_vec();
        for k in [0usize, 2] {
            assert_eq!(
                loaded.search(&probe, k, Method::Bidirectional).occurrences,
                loaded.search(&probe, k, Method::ALGORITHM_A).occurrences
            );
        }

        // With the mirror on disk, the default explain set grows to
        // include the bidirectional method.
        let mut out = Vec::new();
        let probe_ascii = kmm_dna::decode_string(&probe);
        let summary = explain_query(&idxf, &probe_ascii, 2, &[], false, &mut out).unwrap();
        assert!(
            summary.contains(&format!(
                "explained {} method(s)",
                Method::PAPER_SET.len() + 1
            )),
            "{summary}"
        );
        assert!(String::from_utf8(out).unwrap().contains("Bidir"));
    }

    #[test]
    fn upgrade_subcommand_converts_v2_files() {
        let fa = tmp("upgrade.fa");
        let idxf = tmp("upgrade.idx");
        let v2f = tmp("upgrade-v2.idx");
        generate(ReferenceGenome::CMerolae, 0.02, &fa).unwrap();
        index(&fa, &idxf, 2).unwrap();
        let idx = load_index(&idxf).unwrap();

        // Write the same index in the legacy v2 stream format; current
        // readers must refuse it with the upgrade hint.
        let mut w = std::io::BufWriter::new(File::create(&v2f).unwrap());
        idx.fm().save_legacy_v2(&mut w).unwrap();
        drop(w);
        let refused = load_index(&v2f).unwrap_err();
        assert!(refused.0.contains("kmm index upgrade"), "{refused}");

        // In-place upgrade makes it loadable again, with equal answers.
        let summary = index_upgrade(&v2f, None).unwrap();
        assert!(summary.contains("upgraded"), "{summary}");
        let upgraded = load_index(&v2f).unwrap();
        let probe = idx.text()[40..100].to_vec();
        assert_eq!(
            upgraded.search(&probe, 2, Method::ALGORITHM_A).occurrences,
            idx.search(&probe, 2, Method::ALGORITHM_A).occurrences
        );

        // Upgrading a current-format file is a no-op, not an error.
        let again = index_upgrade(&v2f, None).unwrap();
        assert!(again.contains("nothing to do"), "{again}");
    }

    #[test]
    fn mmap_open_matches_read_open() {
        let fa = tmp("mmapopen.fa");
        let idxf = tmp("mmapopen.idx");
        generate(ReferenceGenome::CMerolae, 0.02, &fa).unwrap();
        index(&fa, &idxf, 2).unwrap();

        let (read_idx, read_stats) = open_index_recorded(&idxf, false, &NoopRecorder).unwrap();
        let (mmap_idx, mmap_stats) = open_index_recorded(&idxf, true, &NoopRecorder).unwrap();
        assert_eq!(read_stats.io_bytes, read_stats.file_bytes);
        assert_eq!(read_stats.bytes_mapped, 0);
        if mmap_idx.fm().is_borrowed() {
            assert_eq!(mmap_stats.io_bytes, 0);
            assert_eq!(mmap_stats.bytes_mapped, mmap_stats.file_bytes);
        }
        let probe = read_idx.text()[100..160].to_vec();
        for k in [0usize, 2] {
            assert_eq!(
                mmap_idx.search(&probe, k, Method::ALGORITHM_A).occurrences,
                read_idx.search(&probe, k, Method::ALGORITHM_A).occurrences
            );
        }
    }

    #[test]
    fn search_subcommand_outputs_positions() {
        let fa = tmp("search.fa");
        let idxf = tmp("search.idx");
        generate(ReferenceGenome::CMerolae, 0.02, &fa).unwrap();
        index(&fa, &idxf, 2).unwrap();
        let genome = load_fasta_single(&fa).unwrap();
        let probe = kmm_dna::decode_string(&genome[50..90]);
        let mut out = Vec::new();
        let summary = search_pattern(
            &idxf,
            &probe,
            1,
            Method::Bwt { use_phi: true },
            &StatsOptions::default(),
            &mut out,
        )
        .unwrap();
        assert!(summary.contains("occurrences"));
        let text = String::from_utf8(out).unwrap();
        assert!(text.lines().any(|l| l.starts_with("50\t")), "{text}");
    }

    #[test]
    fn multi_pattern_search_prefixes_pattern_index() {
        let fa = tmp("multisearch.fa");
        let idxf = tmp("multisearch.idx");
        generate(ReferenceGenome::CMerolae, 0.02, &fa).unwrap();
        index(&fa, &idxf, 2).unwrap();
        let genome = load_fasta_single(&fa).unwrap();
        let probes = vec![
            kmm_dna::decode_string(&genome[50..90]),
            kmm_dna::decode_string(&genome[300..340]),
        ];
        let mut out = Vec::new();
        let summary = search_patterns(
            &idxf,
            &probes,
            1,
            Method::ALGORITHM_A,
            4,
            None,
            &StatsOptions::default(),
            &mut out,
        )
        .unwrap();
        assert!(summary.contains("across 2 patterns"), "{summary}");
        let text = String::from_utf8(out).unwrap();
        // Each planted probe is found at its home locus, prefixed with its
        // 0-based pattern index, and pattern 0's lines precede pattern 1's.
        assert!(text.lines().any(|l| l.starts_with("0\t50\t")), "{text}");
        assert!(text.lines().any(|l| l.starts_with("1\t300\t")), "{text}");
        let first_of = |p: &str| text.lines().position(|l| l.starts_with(p)).unwrap();
        assert!(first_of("0\t") < first_of("1\t"));

        // The parallel batch prints byte-identically to a serial run.
        let mut serial = Vec::new();
        search_patterns(
            &idxf,
            &probes,
            1,
            Method::ALGORITHM_A,
            1,
            None,
            &StatsOptions::default(),
            &mut serial,
        )
        .unwrap();
        assert_eq!(text.as_bytes(), serial.as_slice());

        // Empty pattern lists are rejected.
        assert!(search_patterns(
            &idxf,
            &[],
            1,
            Method::ALGORITHM_A,
            1,
            None,
            &StatsOptions::default(),
            &mut Vec::new(),
        )
        .is_err());
    }

    #[test]
    fn trace_out_creates_parent_dirs_and_emits_chrome_json() {
        use kmm_telemetry::Json;
        let fa = tmp("trace.fa");
        let idxf = tmp("trace.idx");
        generate(ReferenceGenome::CMerolae, 0.02, &fa).unwrap();
        index(&fa, &idxf, 1).unwrap();
        let genome = load_fasta_single(&fa).unwrap();
        let probe = kmm_dna::decode_string(&genome[100..160]);

        // Both output paths point into directories that do not exist yet;
        // the CLI must create them rather than fail.
        let base = tmp("trace-nested");
        let _ = std::fs::remove_dir_all(&base);
        let trace = base.join("runs/today/trace.json");
        let json = base.join("runs/today/stats.json");
        let opts = StatsOptions {
            table: false,
            json_path: Some(json.clone()),
            trace_out: Some(trace.clone()),
            slowest: Some(2),
        };
        let mut out = Vec::new();
        let summary =
            search_pattern(&idxf, &probe, 2, Method::ALGORITHM_A, &opts, &mut out).unwrap();
        assert!(summary.contains("trace ->"), "{summary}");
        assert!(summary.contains("slowest"), "{summary}");
        assert!(json.exists());

        // The trace file is loadable Chrome trace-event JSON.
        let doc = Json::parse(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        assert!(!events.is_empty());
        assert!(events
            .iter()
            .all(|e| e.get("ph").and_then(Json::as_str) == Some("X")));

        // An uncreatable parent (a file stands where the directory must
        // go) is reported with the offending paths, not a bare io error.
        let blocker = base.join("blocker");
        std::fs::write(&blocker, b"x").unwrap();
        let bad = StatsOptions {
            trace_out: Some(blocker.join("sub/trace.json")),
            ..StatsOptions::default()
        };
        let err = search_pattern(&idxf, &probe, 2, Method::ALGORITHM_A, &bad, &mut Vec::new())
            .unwrap_err();
        assert!(err.0.contains("blocker"), "{}", err.0);
        assert!(err.0.contains("trace.json"), "{}", err.0);
    }

    #[test]
    fn search_stats_json_has_phases_and_counters() {
        use kmm_telemetry::Json;
        let fa = tmp("stats.fa");
        let idxf = tmp("stats.idx");
        let json = tmp("stats.json");
        generate(ReferenceGenome::CMerolae, 0.02, &fa).unwrap();
        index(&fa, &idxf, 2).unwrap();
        let genome = load_fasta_single(&fa).unwrap();
        let probe = kmm_dna::decode_string(&genome[200..260]);

        let opts = StatsOptions {
            table: true,
            json_path: Some(json.clone()),
            ..StatsOptions::default()
        };
        let mut out = Vec::new();
        let summary =
            search_pattern(&idxf, &probe, 2, Method::ALGORITHM_A, &opts, &mut out).unwrap();
        // The summary carries both the JSON pointer and the table.
        assert!(summary.contains("stats json ->"), "{summary}");
        assert!(summary.contains("search.queries"), "{summary}");

        let doc = Json::parse(&std::fs::read_to_string(&json).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(kmm_telemetry::SCHEMA)
        );
        let phases = doc.get("phases").unwrap();
        for phase in ["index.load", "preprocess.rarray", "search.query"] {
            let entry = phases
                .get(phase)
                .unwrap_or_else(|| panic!("missing {phase}"));
            assert!(entry.get("total_ns").and_then(Json::as_u64).is_some());
        }
        // The load + search actually ran, so those phases saw entries.
        assert!(
            phases
                .get("index.load")
                .unwrap()
                .get("entries")
                .unwrap()
                .as_u64()
                > Some(0)
        );
        assert!(
            phases
                .get("search.query")
                .unwrap()
                .get("entries")
                .unwrap()
                .as_u64()
                > Some(0)
        );
        let counters = doc.get("counters").unwrap();
        assert_eq!(
            counters.get("search.queries").and_then(Json::as_u64),
            Some(1)
        );
        // Every SearchStats field is surfaced as a search.* counter.
        for (name, _) in kmm_core::SearchStats::default().as_pairs() {
            let key = format!("search.{name}");
            assert!(counters.get(&key).is_some(), "missing counter {key}");
        }
    }

    #[test]
    fn explain_renders_table_and_json() {
        use kmm_telemetry::Json;
        let fa = tmp("explain.fa");
        let idxf = tmp("explain.idx");
        generate(ReferenceGenome::CMerolae, 0.02, &fa).unwrap();
        index(&fa, &idxf, 2).unwrap();
        let genome = load_fasta_single(&fa).unwrap();
        let probe = kmm_dna::decode_string(&genome[120..160]);
        let methods = [Method::Bwt { use_phi: true }, Method::ALGORITHM_A];

        let mut table = Vec::new();
        let summary = explain_query(&idxf, &probe, 2, &methods, false, &mut table).unwrap();
        assert!(summary.contains("winner:"), "{summary}");
        let table = String::from_utf8(table).unwrap();
        assert!(table.contains("EXPLAIN pattern="), "{table}");
        assert!(table.contains("depth profile"), "{table}");
        assert!(table.contains("verdict:"), "{table}");

        let mut json = Vec::new();
        explain_query(&idxf, &probe, 2, &methods, true, &mut json).unwrap();
        let doc = Json::parse(std::str::from_utf8(&json).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(kmm_telemetry::EXPLAIN_SCHEMA)
        );
        assert_eq!(
            doc.get("methods").and_then(Json::as_array).map(|m| m.len()),
            Some(2)
        );

        // Bad inputs are CLI errors, not panics.
        assert!(explain_query(&idxf, "QQ", 1, &methods, false, &mut Vec::new()).is_err());

        // An empty method list falls back to the paper set; without
        // mirror sections in the index the default excludes bidir.
        let mut dflt = Vec::new();
        let summary = explain_query(&idxf, &probe, 1, &[], false, &mut dflt).unwrap();
        assert!(
            summary.contains(&format!("explained {} method(s)", Method::PAPER_SET.len())),
            "{summary}"
        );
        assert!(!String::from_utf8(dflt).unwrap().contains("Bidir"));
    }

    #[test]
    fn method_and_genome_parsing() {
        assert_eq!(parse_method("a").unwrap(), Method::ALGORITHM_A);
        assert_eq!(parse_method("bwt").unwrap(), Method::Bwt { use_phi: true });
        assert_eq!(parse_method("seed").unwrap(), Method::SeedFilter);
        assert!(parse_method("wat").is_err());
        assert_eq!(parse_genome("rat").unwrap(), ReferenceGenome::Rat);
        assert_eq!(parse_genome("CMEROLAE").unwrap(), ReferenceGenome::CMerolae);
        assert!(parse_genome("human").is_err());
    }

    #[test]
    fn error_paths_are_reported() {
        assert!(generate(ReferenceGenome::Rat, -1.0, &tmp("x.fa")).is_err());
        assert!(load_index(Path::new("/nonexistent/idx")).is_err());
        let fa = tmp("short.fa");
        generate(ReferenceGenome::CMerolae, 0.01, &fa).unwrap();
        assert!(simulate(&fa, 5, 10_000_000, 1, &tmp("r.fq")).is_err());
        // A FASTA file is not an index.
        assert!(load_index(&fa).is_err());
    }
}
