//! The `kmm` command-line tool: generate / simulate / index / map /
//! search, as a thin pipeline over the library. All subcommand logic
//! lives here (unit-testable); `src/bin/kmm.rs` only parses `argv`.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;

use kmm_bwt::FmIndex;
use kmm_core::{KMismatchIndex, Method};
use kmm_dna::genome::ReferenceGenome;
use kmm_dna::{fasta, fastq};

/// CLI-level errors with user-facing messages.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("i/o error: {e}"))
    }
}

/// Result alias for CLI operations.
pub type CliResult<T> = Result<T, CliError>;

fn err<T>(msg: impl Into<String>) -> CliResult<T> {
    Err(CliError(msg.into()))
}

/// Parse a method name as accepted by `--method`.
pub fn parse_method(name: &str) -> CliResult<Method> {
    match name {
        "a" | "algorithm-a" => Ok(Method::ALGORITHM_A),
        "a-noreuse" => Ok(Method::AlgorithmA { reuse: false }),
        "bwt" => Ok(Method::Bwt { use_phi: true }),
        "bwt-nophi" => Ok(Method::Bwt { use_phi: false }),
        "amir" => Ok(Method::Amir),
        "cole" => Ok(Method::Cole),
        "kangaroo" => Ok(Method::Kangaroo),
        "naive" => Ok(Method::Naive),
        "seed" | "seed-filter" => Ok(Method::SeedFilter),
        other => err(format!(
            "unknown method '{other}' (expected a|bwt|bwt-nophi|amir|cole|kangaroo|naive|seed)"
        )),
    }
}

/// Parse a reference-genome name for `generate`.
pub fn parse_genome(name: &str) -> CliResult<ReferenceGenome> {
    match name.to_ascii_lowercase().as_str() {
        "rat" => Ok(ReferenceGenome::Rat),
        "zebrafish" => Ok(ReferenceGenome::Zebrafish),
        "rat-chr1" => Ok(ReferenceGenome::RatChr1),
        "celegans" | "c-elegans" => Ok(ReferenceGenome::CElegans),
        "cmerolae" | "c-merolae" => Ok(ReferenceGenome::CMerolae),
        other => err(format!(
            "unknown genome '{other}' (expected rat|zebrafish|rat-chr1|celegans|cmerolae)"
        )),
    }
}

/// `kmm generate`: synthesise a genome and write it as FASTA.
pub fn generate(genome: ReferenceGenome, scale: f64, out: &Path) -> CliResult<String> {
    if scale <= 0.0 || scale > 10.0 {
        return err("--scale must be in (0, 10]");
    }
    let seq = genome.generate_scaled(scale);
    let rec = fasta::FastaRecord { id: format!("{} scale={scale}", genome.name()), seq };
    let mut w = BufWriter::new(File::create(out)?);
    fasta::write_fasta(&mut w, &[rec])?;
    w.flush()?;
    Ok(format!("wrote {} ({} bp)", out.display(), genome.generate_scaled(scale).len()))
}

fn load_fasta_single(path: &Path) -> CliResult<Vec<u8>> {
    let recs = fasta::read_fasta(BufReader::new(File::open(path)?))
        .map_err(|e| CliError(format!("{}: {e}", path.display())))?;
    if recs.is_empty() {
        return err(format!("{}: no FASTA records", path.display()));
    }
    // Concatenate multi-record references (chromosomes).
    let mut seq = Vec::new();
    for r in recs {
        seq.extend(r.seq);
    }
    Ok(seq)
}

/// `kmm simulate`: sample wgsim-style reads from a FASTA reference and
/// write them as FASTQ.
pub fn simulate(
    reference: &Path,
    count: usize,
    read_len: usize,
    seed: u64,
    out: &Path,
) -> CliResult<String> {
    let genome = load_fasta_single(reference)?;
    if genome.len() < read_len {
        return err("reference shorter than the read length");
    }
    let reads = kmm_dna::reads::ReadSimulator::new(
        &genome,
        kmm_dna::reads::ReadSimConfig::paper(read_len),
        seed,
    )
    .reads(count);
    let records = fastq::simulated_to_fastq(&reads, 35);
    let mut w = BufWriter::new(File::create(out)?);
    fastq::write_fastq(&mut w, &records)?;
    w.flush()?;
    Ok(format!("wrote {} ({count} reads x {read_len} bp)", out.display()))
}

/// `kmm index`: build the BWT index of a FASTA reference and save it.
///
/// Multi-record FASTA files are concatenated; positions reported by `map`
/// and `search` are then concatenation offsets, and matches may straddle
/// record boundaries. Pipelines that need per-chromosome coordinates and
/// boundary filtering should use `kmm_core::MultiIndex` directly (the
/// saved index format holds a single text).
pub fn index(reference: &Path, out: &Path) -> CliResult<String> {
    let genome = load_fasta_single(reference)?;
    let idx = KMismatchIndex::new(genome);
    let mut w = BufWriter::new(File::create(out)?);
    idx.fm().save(&mut w)?;
    w.flush()?;
    Ok(format!(
        "indexed {} bp -> {} ({} bytes of rank/SA structures)",
        idx.len(),
        out.display(),
        idx.fm().heap_bytes()
    ))
}

/// Load a saved index, recovering the forward text from the BWT.
pub fn load_index(path: &Path) -> CliResult<KMismatchIndex> {
    let fm = FmIndex::load(BufReader::new(File::open(path)?))
        .map_err(|e| CliError(format!("{}: {e}", path.display())))?;
    // The index stores reverse(text) + $; invert and flip to recover text.
    let mut rev = fm.reconstruct_text();
    rev.pop(); // sentinel
    rev.reverse();
    Ok(KMismatchIndex::from_parts(rev, fm))
}

/// `kmm map`: align every FASTQ read against a saved index.
pub fn map_reads(
    index_path: &Path,
    reads_path: &Path,
    k: usize,
    method: Method,
    both_strands: bool,
    out: &mut dyn Write,
) -> CliResult<String> {
    use kmm_core::{MapOutcome, MapperConfig, ReadMapper, Strand};
    let idx = load_index(index_path)?;
    let reads = fastq::read_fastq(BufReader::new(File::open(reads_path)?))
        .map_err(|e| CliError(format!("{}: {e}", reads_path.display())))?;
    let mapper =
        ReadMapper::new(&idx, MapperConfig { k, both_strands, method });
    writeln!(out, "#read\tposition\tstrand\tmismatches\tmapq")?;
    let mut mapped = 0usize;
    let mut unique = 0usize;
    let mut hits = 0usize;
    for rec in &reads {
        let report = mapper.map(&rec.seq);
        match &report.outcome {
            MapOutcome::Unmapped => continue,
            MapOutcome::Unique(_) => {
                mapped += 1;
                unique += 1;
            }
            MapOutcome::Multi(_) => mapped += 1,
        }
        for a in &report.all {
            hits += 1;
            writeln!(
                out,
                "{}\t{}\t{}\t{}\t{}",
                rec.id,
                a.position,
                if a.strand == Strand::Forward { '+' } else { '-' },
                a.mismatches,
                report.mapq
            )?;
        }
    }
    Ok(format!(
        "mapped {mapped}/{} reads ({unique} unique, {hits} hits) with {} at k={k}",
        reads.len(),
        method.label()
    ))
}

/// `kmm search`: one ad-hoc pattern against a saved index.
pub fn search_pattern(
    index_path: &Path,
    pattern_ascii: &str,
    k: usize,
    method: Method,
    out: &mut dyn Write,
) -> CliResult<String> {
    let idx = load_index(index_path)?;
    let pattern = kmm_dna::encode(pattern_ascii.as_bytes())
        .map_err(|e| CliError(format!("bad pattern: {e}")))?;
    let res = idx.search(&pattern, k, method);
    for occ in &res.occurrences {
        writeln!(out, "{}\t{}", occ.position, occ.mismatches)?;
    }
    Ok(format!("{} occurrences (stats: {})", res.occurrences.len(), res.stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("kmm-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn full_pipeline_generate_index_simulate_map() {
        let fa = tmp("pipeline.fa");
        let idxf = tmp("pipeline.idx");
        let fq = tmp("pipeline.fq");

        generate(ReferenceGenome::CMerolae, 0.05, &fa).unwrap();
        index(&fa, &idxf).unwrap();
        simulate(&fa, 10, 60, 7, &fq).unwrap();

        let mut out = Vec::new();
        let summary =
            map_reads(&idxf, &fq, 4, Method::ALGORITHM_A, true, &mut out).unwrap();
        assert!(summary.starts_with("mapped"), "{summary}");
        let text = String::from_utf8(out).unwrap();
        // Header plus at least a few hits (reads come from the genome).
        assert!(text.lines().count() > 5, "{text}");
        assert!(text.starts_with("#read\tposition\tstrand\tmismatches\tmapq"));
        assert!(text.lines().skip(1).all(|l| l.contains('+') || l.contains('-')));
    }

    #[test]
    fn loaded_index_equals_fresh_index() {
        let fa = tmp("roundtrip.fa");
        let idxf = tmp("roundtrip.idx");
        generate(ReferenceGenome::CMerolae, 0.02, &fa).unwrap();
        index(&fa, &idxf).unwrap();

        let genome = load_fasta_single(&fa).unwrap();
        let fresh = KMismatchIndex::new(genome.clone());
        let loaded = load_index(&idxf).unwrap();
        assert_eq!(loaded.text(), fresh.text());
        let probe = genome[100..160].to_vec();
        for k in [0usize, 2] {
            assert_eq!(
                loaded.search(&probe, k, Method::ALGORITHM_A).occurrences,
                fresh.search(&probe, k, Method::ALGORITHM_A).occurrences
            );
        }
    }

    #[test]
    fn search_subcommand_outputs_positions() {
        let fa = tmp("search.fa");
        let idxf = tmp("search.idx");
        generate(ReferenceGenome::CMerolae, 0.02, &fa).unwrap();
        index(&fa, &idxf).unwrap();
        let genome = load_fasta_single(&fa).unwrap();
        let probe = kmm_dna::decode_string(&genome[50..90]);
        let mut out = Vec::new();
        let summary =
            search_pattern(&idxf, &probe, 1, Method::Bwt { use_phi: true }, &mut out).unwrap();
        assert!(summary.contains("occurrences"));
        let text = String::from_utf8(out).unwrap();
        assert!(text.lines().any(|l| l.starts_with("50\t")), "{text}");
    }

    #[test]
    fn method_and_genome_parsing() {
        assert_eq!(parse_method("a").unwrap(), Method::ALGORITHM_A);
        assert_eq!(parse_method("bwt").unwrap(), Method::Bwt { use_phi: true });
        assert_eq!(parse_method("seed").unwrap(), Method::SeedFilter);
        assert!(parse_method("wat").is_err());
        assert_eq!(parse_genome("rat").unwrap(), ReferenceGenome::Rat);
        assert_eq!(parse_genome("CMEROLAE").unwrap(), ReferenceGenome::CMerolae);
        assert!(parse_genome("human").is_err());
    }

    #[test]
    fn error_paths_are_reported() {
        assert!(generate(ReferenceGenome::Rat, -1.0, &tmp("x.fa")).is_err());
        assert!(load_index(Path::new("/nonexistent/idx")).is_err());
        let fa = tmp("short.fa");
        generate(ReferenceGenome::CMerolae, 0.01, &fa).unwrap();
        assert!(simulate(&fa, 5, 10_000_000, 1, &tmp("r.fq")).is_err());
        // A FASTA file is not an index.
        assert!(load_index(&fa).is_err());
    }
}
