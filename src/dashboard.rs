//! The `/dashboard` page: one self-contained HTML document, no external
//! assets, no build step. Everything it shows comes from endpoints the
//! daemon already serves — `/stats.json` (counters + histograms, polled
//! for QPS and latency percentiles), `/slow.json` (the flight recorder's
//! slowest queries), and `POST /explain` (on-demand per-method cost
//! attribution with a depth-profile chart).
//!
//! Keeping the page a single `const` string means the dashboard
//! version-locks to the binary: the fields its JavaScript reads are the
//! fields this build emits, and `curl /dashboard > dash.html` produces a
//! file that keeps working against the same server.

/// The complete dashboard document. Served verbatim with
/// `Content-Type: text/html`.
pub const HTML: &str = r##"<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>kmm dashboard</title>
<style>
  :root { color-scheme: dark; }
  body { font: 13px/1.5 ui-monospace, SFMono-Regular, Menlo, Consolas, monospace;
         background: #14171c; color: #d7dde4; margin: 0; padding: 16px 20px; }
  h1 { font-size: 16px; margin: 0 0 4px; color: #e8eef5; }
  h2 { font-size: 13px; margin: 18px 0 6px; color: #9fb3c8; text-transform: uppercase;
       letter-spacing: .08em; }
  .sub { color: #6b7a8c; margin-bottom: 14px; }
  .cards { display: flex; flex-wrap: wrap; gap: 10px; }
  .card { background: #1b2027; border: 1px solid #2a313b; border-radius: 6px;
          padding: 8px 14px; min-width: 110px; }
  .card .v { font-size: 20px; color: #7cc4ff; }
  .card .l { color: #8494a7; font-size: 11px; }
  table { border-collapse: collapse; width: 100%; max-width: 900px; }
  th, td { text-align: left; padding: 3px 10px 3px 0; border-bottom: 1px solid #232a33; }
  th { color: #8494a7; font-weight: normal; }
  td.num, th.num { text-align: right; }
  .bar { fill: #4f9cd9; }
  .bar.win { fill: #67c587; }
  .seg-exp { fill: #4f9cd9; }
  .seg-empty { fill: #8b95a3; }
  .seg-budget { fill: #d9a14f; }
  .seg-cutoff { fill: #c56767; }
  svg text { fill: #b8c4d2; font: 10px ui-monospace, monospace; }
  input, button { font: inherit; background: #10141a; color: #d7dde4;
                  border: 1px solid #2a313b; border-radius: 4px; padding: 4px 8px; }
  button { cursor: pointer; background: #233043; }
  .err { color: #e08585; }
  .verdict { color: #67c587; margin: 6px 0; }
  .legend span { margin-right: 14px; }
  .sw { display: inline-block; width: 9px; height: 9px; margin-right: 4px;
        border-radius: 2px; vertical-align: -1px; }
</style>
</head>
<body>
<h1>kmm dashboard</h1>
<div class="sub">live view of this serving process &mdash; polls /stats.json and /slow.json every 2s</div>

<div class="cards">
  <div class="card"><div class="v" id="qps">&ndash;</div><div class="l">search+map QPS</div></div>
  <div class="card"><div class="v" id="reqs">&ndash;</div><div class="l">requests total</div></div>
  <div class="card"><div class="v" id="errs">&ndash;</div><div class="l">errors total</div></div>
  <div class="card"><div class="v" id="shed">&ndash;</div><div class="l">shed (429)</div></div>
  <div class="card"><div class="v" id="p50">&ndash;</div><div class="l">search p50</div></div>
  <div class="card"><div class="v" id="p95">&ndash;</div><div class="l">search p95</div></div>
  <div class="card"><div class="v" id="p99">&ndash;</div><div class="l">search p99</div></div>
</div>

<h2>connections</h2>
<div class="cards">
  <div class="card"><div class="v" id="copen">&ndash;</div><div class="l">open now</div></div>
  <div class="card"><div class="v" id="copened">&ndash;</div><div class="l">opened total</div></div>
  <div class="card"><div class="v" id="creuse">&ndash;</div><div class="l">keep-alive reuses</div></div>
  <div class="card"><div class="v" id="shedq">&ndash;</div><div class="l">shed: queue full</div></div>
  <div class="card"><div class="v" id="shedt">&ndash;</div><div class="l">shed: tenant rate</div></div>
  <div class="card"><div class="v" id="sheds">&ndash;</div><div class="l">shed: slow loris</div></div>
  <div class="card"><div class="v" id="shedc">&ndash;</div><div class="l">shed: conn cap</div></div>
</div>

<h2>slowest queries (flight recorder)</h2>
<table id="slow"><thead><tr><th>label</th><th class="num">duration</th></tr></thead>
<tbody></tbody></table>

<h2>explain a query</h2>
<div>
  pattern <input id="xp" size="32" value="ACGTACGT" spellcheck="false">
  k <input id="xk" size="2" value="2">
  <button id="xgo">explain</button>
  <span id="xerr" class="err"></span>
</div>
<div id="xout"></div>

<script>
"use strict";
var prevServed = null, prevT = null;

function fmtNs(ns) {
  if (!isFinite(ns) || ns <= 0) return "0";
  if (ns < 1e3) return ns.toFixed(0) + "ns";
  if (ns < 1e6) return (ns / 1e3).toFixed(1) + "us";
  if (ns < 1e9) return (ns / 1e6).toFixed(2) + "ms";
  return (ns / 1e9).toFixed(2) + "s";
}

function getJson(url, cb) {
  var x = new XMLHttpRequest();
  x.open("GET", url);
  x.onload = function () { if (x.status === 200) cb(JSON.parse(x.responseText)); };
  x.send();
}

function pollStats() {
  getJson("/stats.json", function (s) {
    var c = s.counters || {};
    var served = (c["serve.requests"] || 0);
    var now = Date.now();
    if (prevServed !== null && now > prevT) {
      var qps = (served - prevServed) * 1000 / (now - prevT);
      document.getElementById("qps").textContent = qps.toFixed(1);
    }
    prevServed = served; prevT = now;
    document.getElementById("reqs").textContent = served;
    document.getElementById("errs").textContent = c["serve.errors"] || 0;
    document.getElementById("shed").textContent = c["serve.shed"] || 0;
    var opened = c["serve.conns_opened"] || 0, closed = c["serve.conns_closed"] || 0;
    document.getElementById("copen").textContent = Math.max(0, opened - closed);
    document.getElementById("copened").textContent = opened;
    document.getElementById("creuse").textContent = c["serve.keepalive_reuses"] || 0;
    document.getElementById("shedq").textContent = c["serve.shed"] || 0;
    document.getElementById("shedt").textContent = c["serve.shed_tenant"] || 0;
    document.getElementById("sheds").textContent = c["serve.shed_stall"] || 0;
    document.getElementById("shedc").textContent = c["serve.shed_conns"] || 0;
    var h = (s.histograms || {})["search.latency_ns"];
    document.getElementById("p50").textContent = h ? fmtNs(h.p50) : "&ndash;";
    document.getElementById("p95").textContent = h ? fmtNs(h.p95) : "&ndash;";
    document.getElementById("p99").textContent = h ? fmtNs(h.p99) : "&ndash;";
  });
}

function pollSlow() {
  getJson("/slow.json", function (s) {
    var body = document.querySelector("#slow tbody");
    body.textContent = "";
    (s.slowest || []).forEach(function (q) {
      var tr = document.createElement("tr");
      var a = document.createElement("td"); a.textContent = q.label || "(unlabelled)";
      var b = document.createElement("td"); b.className = "num";
      b.textContent = fmtNs(q.dur_ns);
      tr.appendChild(a); tr.appendChild(b); body.appendChild(tr);
    });
  });
}

function svgEl(tag, attrs) {
  var e = document.createElementNS("http://www.w3.org/2000/svg", tag);
  for (var k in attrs) e.setAttribute(k, attrs[k]);
  return e;
}

// Horizontal work_units bar per method; the verdict winner is green.
function workChart(methods, winner) {
  var w = 640, rowH = 22, pad = 150;
  var svg = svgEl("svg", { width: w, height: methods.length * rowH + 4 });
  var max = 1;
  methods.forEach(function (m) { if (m.work_units > max) max = m.work_units; });
  methods.forEach(function (m, i) {
    var y = i * rowH + 2;
    var t = svgEl("text", { x: 0, y: y + 13 });
    t.textContent = m.method;
    svg.appendChild(t);
    var bw = Math.max(1, (w - pad - 80) * m.work_units / max);
    var r = svgEl("rect", { x: pad, y: y + 3, width: bw, height: rowH - 8 });
    r.setAttribute("class", m.method === winner ? "bar win" : "bar");
    svg.appendChild(r);
    var v = svgEl("text", { x: pad + bw + 6, y: y + 13 });
    v.textContent = m.work_units + " wu";
    svg.appendChild(v);
  });
  return svg;
}

// Per-depth stacked bars: expanded nodes plus pruned children by cause.
function depthChart(m) {
  var depths = m.depths || [];
  if (!depths.length) {
    var d = document.createElement("div");
    d.textContent = m.method + ": no depth profile (uninstrumented method)";
    return d;
  }
  var w = 640, h = 110, padB = 16, padL = 34;
  var max = 1;
  depths.forEach(function (d) {
    var tot = d.expanded + d.pruned_empty_interval + d.pruned_budget + d.pruned_cutoff;
    if (tot > max) max = tot;
  });
  var svg = svgEl("svg", { width: w, height: h });
  var bw = Math.max(2, Math.floor((w - padL) / depths.length) - 2);
  depths.forEach(function (d, i) {
    var x = padL + i * (bw + 2);
    var y = h - padB;
    [["seg-exp", d.expanded], ["seg-empty", d.pruned_empty_interval],
     ["seg-budget", d.pruned_budget], ["seg-cutoff", d.pruned_cutoff]]
      .forEach(function (seg) {
        var sh = (h - padB - 4) * seg[1] / max;
        if (sh > 0) {
          y -= sh;
          var r = svgEl("rect", { x: x, y: y, width: bw, height: sh });
          r.setAttribute("class", seg[0]);
          svg.appendChild(r);
        }
      });
    if (depths.length <= 40 || i % 5 === 0) {
      var t = svgEl("text", { x: x, y: h - 3 });
      t.textContent = d.depth;
      svg.appendChild(t);
    }
  });
  var label = svgEl("text", { x: 0, y: 12 });
  label.textContent = m.method;
  svg.appendChild(label);
  return svg;
}

document.getElementById("xgo").onclick = function () {
  var pattern = document.getElementById("xp").value.trim();
  var k = parseInt(document.getElementById("xk").value, 10) || 0;
  var errEl = document.getElementById("xerr");
  errEl.textContent = "";
  var x = new XMLHttpRequest();
  x.open("POST", "/explain");
  x.setRequestHeader("Content-Type", "application/json");
  x.onload = function () {
    var out = document.getElementById("xout");
    out.textContent = "";
    if (x.status !== 200) {
      try { errEl.textContent = JSON.parse(x.responseText).error; }
      catch (e) { errEl.textContent = "explain failed: " + x.status; }
      return;
    }
    var rep = JSON.parse(x.responseText);
    if (rep.verdict) {
      var v = document.createElement("div");
      v.className = "verdict";
      v.textContent = "verdict: " + rep.verdict.winner + " — " + rep.verdict.why;
      out.appendChild(v);
    }
    out.appendChild(workChart(rep.methods, rep.verdict ? rep.verdict.winner : null));
    var legend = document.createElement("div");
    legend.className = "legend";
    [["seg-exp", "expanded"], ["seg-empty", "pruned: empty interval"],
     ["seg-budget", "pruned: budget"], ["seg-cutoff", "pruned: φ cutoff"]]
      .forEach(function (p) {
        var s = document.createElement("span");
        var sw = document.createElement("span");
        sw.className = "sw";
        sw.style.background = { "seg-exp": "#4f9cd9", "seg-empty": "#8b95a3",
                                "seg-budget": "#d9a14f", "seg-cutoff": "#c56767" }[p[0]];
        s.appendChild(sw);
        s.appendChild(document.createTextNode(p[1]));
        legend.appendChild(s);
      });
    out.appendChild(legend);
    rep.methods.forEach(function (m) { out.appendChild(depthChart(m)); });
  };
  x.send(JSON.stringify({ pattern: pattern, k: k }));
};

pollStats(); pollSlow();
setInterval(pollStats, 2000);
setInterval(pollSlow, 2000);
</script>
</body>
</html>
"##;

#[cfg(test)]
mod tests {
    use super::HTML;

    #[test]
    fn dashboard_is_self_contained() {
        // No external fetches: everything the page needs ships inline.
        // (The only URL allowed is the SVG XML namespace, which is an
        // identifier, not a fetch.)
        for forbidden in ["https://", "<link", "<script src", "src=", "@import", "cdn"] {
            assert!(
                !HTML.contains(forbidden),
                "dashboard references an external asset via {forbidden:?}"
            );
        }
        let urls = HTML.matches("http://").count();
        let ns = HTML.matches("http://www.w3.org/2000/svg").count();
        assert_eq!(urls, ns, "dashboard contains a non-namespace http:// URL");
        assert!(HTML.starts_with("<!DOCTYPE html>"));
        // The page consumes exactly the endpoints the daemon serves.
        for endpoint in ["/stats.json", "/slow.json", "/explain"] {
            assert!(HTML.contains(endpoint), "dashboard never polls {endpoint}");
        }
        // Fields it reads must match what those endpoints emit.
        for field in [
            "serve.requests",
            "serve.conns_opened",
            "serve.conns_closed",
            "serve.keepalive_reuses",
            "serve.shed_tenant",
            "serve.shed_stall",
            "serve.shed_conns",
            "search.latency_ns",
            "slowest",
            "work_units",
            "pruned_empty_interval",
            "pruned_budget",
            "pruned_cutoff",
        ] {
            assert!(HTML.contains(field), "dashboard missing field {field}");
        }
    }
}
