//! # bwt-kmismatch
//!
//! A production-quality Rust implementation of **"BWT Arrays and
//! Mismatching Trees: A New Way for String Matching with k Mismatches"**
//! (Yangjun Chen and Yujia Wu, ICDE 2017), together with every substrate
//! it depends on and every baseline it is evaluated against.
//!
//! The crate is a façade over the workspace:
//!
//! * [`dna`] — alphabet, packed sequences, FASTA, genome/read simulation;
//! * [`suffix`] — SA-IS suffix arrays, LCP, RMQ, suffix trees;
//! * [`bwt`] — the Burrows–Wheeler index (rankall arrays, FM-index);
//! * [`classic`] — exact matchers and online k-mismatch baselines;
//! * [`core`] — the paper's Algorithm A, the S-tree baseline, φ pruning
//!   and the unified [`KMismatchIndex`] front-end;
//! * [`par`] — a zero-dependency scoped thread pool driving the
//!   deterministic parallel batch and index-construction paths.
//!
//! ## Quickstart
//!
//! ```
//! use bwt_kmismatch::{KMismatchIndex, Method};
//!
//! // Index a target once, search any number of patterns.
//! let index = KMismatchIndex::from_ascii(b"acagaca").unwrap();
//! let pattern = bwt_kmismatch::dna::encode(b"tcaca").unwrap();
//!
//! // All occurrences with at most 2 mismatches.
//! let result = index.search(&pattern, 2, Method::ALGORITHM_A);
//! let positions: Vec<usize> = result.occurrences.iter().map(|o| o.position).collect();
//! assert_eq!(positions, vec![0, 2]);
//! ```

pub mod cli;
pub mod dashboard;
pub mod poll;
pub mod serve;

pub use kmm_bwt as bwt;
pub use kmm_classic as classic;
pub use kmm_core as core;
pub use kmm_dna as dna;
pub use kmm_par as par;
pub use kmm_suffix as suffix;
pub use kmm_telemetry as telemetry;

pub use kmm_classic::Occurrence;
pub use kmm_core::{KMismatchIndex, Method, SearchResult, SearchStats};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_reexports_work() {
        let index = KMismatchIndex::from_ascii(b"gattaca").unwrap();
        let p = dna::encode(b"gatt").unwrap();
        let r = index.search(&p, 0, Method::ALGORITHM_A);
        assert_eq!(r.occurrences.len(), 1);
    }
}
