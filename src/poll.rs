//! Libc-free `poll(2)` readiness for the serving front end.
//!
//! The repo is dependency-free, so — exactly like the raw `mmap` wrapper
//! in `kmm-bwt` — the syscall is issued directly on Linux/x86_64. Every
//! other platform falls back to a short sleep that reports every
//! descriptor ready: callers drive nonblocking sockets and tolerate
//! `WouldBlock`, so spurious readiness only costs a failed `read`/`write`
//! attempt, never correctness. The fallback turns the event loop into a
//! bounded-interval poll loop, which is the same behaviour the blocking
//! server's accept loop had.
//!
//! Only the three interest bits the server uses are exposed. `revents`
//! may additionally carry `POLLERR`/`POLLHUP`/`POLLNVAL` from the
//! kernel; callers treat any of those as "attend to this socket" (the
//! subsequent nonblocking I/O call surfaces the actual error).

use std::time::Duration;

/// Interest/readiness: data available to read (or a pending accept).
pub const POLLIN: i16 = 0x001;
/// Interest/readiness: writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// Readiness only: error condition (always reported, never requested).
pub const POLLERR: i16 = 0x008;
/// Readiness only: peer hung up.
pub const POLLHUP: i16 = 0x010;
/// Readiness only: invalid descriptor.
pub const POLLNVAL: i16 = 0x020;

/// One entry of the `poll(2)` descriptor array (layout-compatible with
/// the kernel's `struct pollfd`).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The descriptor to watch.
    pub fd: i32,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Kernel-reported readiness, valid after [`poll`] returns.
    pub revents: i16,
}

impl PollFd {
    /// Watch `fd` for `events`.
    pub fn new(fd: i32, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// True when the kernel reported any of `mask` (or an error/hangup
    /// condition, which always demands attention).
    pub fn ready(&self, mask: i16) -> bool {
        self.revents & (mask | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    //! Raw poll syscall for x86_64 Linux (no libc in the tree).

    use std::arch::asm;

    const SYS_POLL: usize = 7;

    /// `poll(fds, nfds, timeout_ms)`; returns the ready count or an
    /// errno-style `io::Error`.
    pub(super) fn poll(fds: &mut [super::PollFd], timeout_ms: i32) -> std::io::Result<usize> {
        let ret: isize;
        // SAFETY: the pointer/length describe a live, exclusively
        // borrowed `#[repr(C)]` pollfd array; the kernel validates the
        // descriptors and reports failure via errno.
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") SYS_POLL as isize => ret,
                in("rdi") fds.as_mut_ptr(),
                in("rsi") fds.len(),
                in("rdx") timeout_ms as isize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack)
            );
        }
        if (-4095..0).contains(&ret) {
            Err(std::io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }
}

/// Wait up to `timeout` for readiness on `fds`, filling in `revents`.
/// Returns how many entries are ready (0 on timeout).
///
/// A signal interruption (`EINTR`) is reported as a timeout rather than
/// an error — the event loop re-derives its interest set every
/// iteration anyway. On platforms without the raw-syscall backend this
/// sleeps briefly and reports everything ready (see the module docs).
pub fn poll(fds: &mut [PollFd], timeout: Duration) -> std::io::Result<usize> {
    for fd in fds.iter_mut() {
        fd.revents = 0;
    }
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    {
        let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        match sys::poll(fds, ms) {
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Ok(0),
            other => other,
        }
    }
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    {
        std::thread::sleep(timeout);
        for fd in fds.iter_mut() {
            fd.revents = fd.events;
        }
        Ok(fds.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut fds = [PollFd::new(listener.as_raw_fd(), POLLIN)];

        // Nothing pending: a short poll times out (on the real backend).
        poll(&mut fds, Duration::from_millis(1)).unwrap();

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            poll(&mut fds, Duration::from_millis(50)).unwrap();
            if fds[0].ready(POLLIN) && listener.accept().is_ok() {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "pending accept never became readable"
            );
        }
    }

    #[test]
    fn connected_stream_reports_write_readiness_and_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        // A fresh socket with an empty send buffer is writable.
        let mut fds = [PollFd::new(server.as_raw_fd(), POLLOUT)];
        poll(&mut fds, Duration::from_millis(100)).unwrap();
        assert!(fds[0].ready(POLLOUT));

        client.write_all(b"ping").unwrap();
        let mut fds = [PollFd::new(server.as_raw_fd(), POLLIN)];
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut server = server;
        let mut buf = [0u8; 8];
        loop {
            poll(&mut fds, Duration::from_millis(50)).unwrap();
            if fds[0].ready(POLLIN) {
                match server.read(&mut buf) {
                    Ok(n) if n > 0 => break,
                    Ok(_) => panic!("unexpected EOF"),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                    Err(e) => panic!("read failed: {e}"),
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "sent bytes never became readable"
            );
        }
    }
}
