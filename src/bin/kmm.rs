//! `kmm` — command-line front-end for the bwt-kmismatch suite.
//!
//! ```text
//! kmm generate --genome rat --scale 0.01 -o ref.fa
//! kmm index    --reference ref.fa -o ref.idx
//! kmm simulate --reference ref.fa --reads 100 --len 100 -o reads.fq
//! kmm map      --index ref.idx --reads reads.fq -k 5 [--method a]
//! kmm search   --index ref.idx --pattern ACGTT... -k 3 [--method bwt]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use bwt_kmismatch::cli::{self, CliError};

const USAGE: &str = "\
usage: kmm <command> [options]

commands:
  generate  --genome <rat|zebrafish|rat-chr1|celegans|cmerolae>
            [--scale F] -o <out.fa>
  index     --reference <ref.fa> -o <out.idx>
  simulate  --reference <ref.fa> [--reads N] [--len L] [--seed S] -o <out.fq>
  map       --index <ref.idx> --reads <reads.fq> [-k K] [--method M]
            [--both-strands true] [--stats] [--stats-json <out.json>]
  search    --index <ref.idx> --pattern <DNA> [-k K] [--method M]
            [--stats] [--stats-json <out.json>]

methods: a (Algorithm A, default) | bwt | bwt-nophi | amir | cole |
         kangaroo | naive | seed

--stats prints a telemetry table (phase timings, counters, histograms)
with the summary; --stats-json writes the same snapshot as JSON.";

/// Flags that take no value; their presence means `true`.
const BOOLEAN_FLAGS: &[&str] = &["stats"];

struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Args, CliError> {
        let mut flags = Vec::new();
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--").or_else(|| a.strip_prefix('-')) {
                if BOOLEAN_FLAGS.contains(&name) {
                    flags.push((name.to_string(), "true".to_string()));
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| CliError(format!("flag --{name} needs a value")))?;
                flags.push((name.to_string(), value.clone()));
            } else {
                return Err(CliError(format!("unexpected argument '{a}'")));
            }
        }
        Ok(Args { flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, name: &str) -> Result<&str, CliError> {
        self.get(name)
            .ok_or_else(|| CliError(format!("missing required flag --{name}")))
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError(format!("bad value for --{name}: {v}"))),
        }
    }
}

fn stats_options(args: &Args) -> cli::StatsOptions {
    cli::StatsOptions {
        table: args.get("stats").is_some(),
        json_path: args.get("stats-json").map(PathBuf::from),
    }
}

fn run() -> Result<String, CliError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        return Err(CliError(USAGE.to_string()));
    };
    let args = Args::parse(rest)?;
    let out_path = |a: &Args| -> Result<PathBuf, CliError> { Ok(PathBuf::from(a.require("o")?)) };
    match command.as_str() {
        "generate" => {
            let genome = cli::parse_genome(args.require("genome")?)?;
            let scale: f64 = args.parsed("scale", 0.01)?;
            cli::generate(genome, scale, &out_path(&args)?)
        }
        "index" => cli::index(
            &PathBuf::from(args.require("reference")?),
            &out_path(&args)?,
        ),
        "simulate" => cli::simulate(
            &PathBuf::from(args.require("reference")?),
            args.parsed("reads", 50usize)?,
            args.parsed("len", 100usize)?,
            args.parsed("seed", 42u64)?,
            &out_path(&args)?,
        ),
        "map" => {
            let method = cli::parse_method(args.get("method").unwrap_or("a"))?;
            let both = args
                .get("both-strands")
                .map(|v| v == "true")
                .unwrap_or(false);
            let stats = stats_options(&args);
            let mut stdout = std::io::stdout().lock();
            cli::map_reads(
                &PathBuf::from(args.require("index")?),
                &PathBuf::from(args.require("reads")?),
                args.parsed("k", 5usize)?,
                method,
                both,
                &stats,
                &mut stdout,
            )
        }
        "search" => {
            let method = cli::parse_method(args.get("method").unwrap_or("a"))?;
            let stats = stats_options(&args);
            let mut stdout = std::io::stdout().lock();
            cli::search_pattern(
                &PathBuf::from(args.require("index")?),
                args.require("pattern")?,
                args.parsed("k", 3usize)?,
                method,
                &stats,
                &mut stdout,
            )
        }
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError(format!("unknown command '{other}'\n\n{USAGE}"))),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(summary) => {
            eprintln!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("kmm: {e}");
            ExitCode::FAILURE
        }
    }
}
