//! `kmm` — command-line front-end for the bwt-kmismatch suite.
//!
//! ```text
//! kmm generate --genome rat --scale 0.01 -o ref.fa
//! kmm index    --reference ref.fa -o ref.idx [--threads N]
//! kmm simulate --reference ref.fa --reads 100 --len 100 -o reads.fq
//! kmm map      --index ref.idx --reads reads.fq -k 5 [--method a] [--threads N]
//! kmm search   --index ref.idx --pattern ACGTT... -k 3 [--method bwt] [--threads N]
//! kmm serve    --index ref.idx [--addr 127.0.0.1:8080] [--threads N]
//! kmm bench diff BENCH_a.json BENCH_b.json [--fail-on-regress 15]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use bwt_kmismatch::cli::{self, CliError};
use kmm_telemetry::events::{self, EventLog};
use kmm_telemetry::LogLevel;

// Every kmm process allocates through the counting wrapper so
// `--stats` can report live/peak heap per phase. With the default
// `alloc-track` feature off the wrapper compiles to a pass-through.
#[global_allocator]
static ALLOC: kmm_telemetry::CountingAlloc = kmm_telemetry::CountingAlloc;

const USAGE: &str = "\
usage: kmm <command> [options]

commands:
  generate  --genome <rat|zebrafish|rat-chr1|celegans|cmerolae>
            [--scale F] -o <out.fa>
  index     --reference <ref.fa> -o <out.idx> [--threads N] [--bidir]
  index upgrade --index <old.idx> [-o <out.idx>]
  simulate  --reference <ref.fa> [--reads N] [--len L] [--seed S] -o <out.fq>
  map       --index <ref.idx> --reads <reads.fq> [-k K] [--method M]
            [--both-strands true] [--threads N] [--timeout-ms T] [--stats]
            [--stats-json <out.json>] [--trace-out <trace.json>]
            [--slowest K]
  search    --index <ref.idx> --pattern <DNA> [--pattern <DNA> ...] [-k K]
            [--method M] [--threads N] [--timeout-ms T] [--stats]
            [--stats-json <out.json>] [--trace-out <trace.json>]
            [--slowest K]
  explain   --index <ref.idx> --pattern <DNA> [-k K]
            [--method M] [--method M ...] [--json] [--threads N]
  serve     --index <ref.idx> [--addr HOST:PORT] [--threads N] [-k K]
            [--method M] [--slowest K] [--port-file <path>]
            [--timeout-ms T] [--max-body-bytes B] [--failpoints SPEC]
            [--mmap] [--keep-alive N] [--idle-timeout-ms T]
            [--tenant-rate N] [--max-conns N]
  bench diff <baseline.json> <candidate.json> [--fail-on-regress PCT]
            [--fail-on-time-regress PCT] [--assert-identical]

global options (any command):
  --log-level <error|warn|info|debug>   stderr event verbosity (default info)
  --quiet                               suppress stderr event lines
  --log-json <path>                     append events as JSON lines to a file

methods: a (Algorithm A, default) | bwt | bwt-nophi | bidir | amir |
         cole | kangaroo | naive | seed

--bidir additionally builds the reverse-BWT mirror rank structure and
stores it in the same v3 index file as optional sections (readable by
older kmm builds, which ignore them). An index with the mirror serves
--method bidir — bidirectional search driven by optimum search schemes
— without reconstructing the text; without it, bidir searches rebuild
the mirror in memory on first use.

--threads N (or -j N) sets the worker count for index construction and
batch map/search; it defaults to the machine's available parallelism.
Results are bit-identical at any thread count.

--stats prints a telemetry table (phase timings, counters, histograms,
latency percentiles) with the summary; --stats-json writes the same
snapshot as JSON. --trace-out records per-query spans and writes a
Chrome trace-event JSON (open in Perfetto / chrome://tracing);
--slowest K prints the K slowest queries from the flight recorder.

explain runs one query once per method with per-depth cost attribution
armed and prints a query-plan-style comparison: deterministic counters
(rank blocks, nodes, prunes by cause), a per-depth expansion profile,
heap deltas, and a winner verdict computed from work counters — never
wall-clock, so the output is byte-identical across thread counts and
SIMD kernels. Without --method it compares the paper's four methods —
plus bidir when the index file carries the reverse-BWT mirror; repeat
--method to pick a custom set. --json emits kmm-explain/v1 JSON.

--timeout-ms T gives each query/read a cooperative deadline: work past
the budget stops at the next poll point and returns the verified partial
results, flagged as truncated (CLI summaries count them; serve answers
504 with 'truncated': true). Without it, results are exhaustive.

serve starts an event-loop HTTP/1.1 daemon over a loaded index with
GET /healthz, /metrics (Prometheus), /stats.json, /slow.json,
/trace.json, /dashboard (self-contained live HTML dashboard) and
POST /search, /map, /explain, /shutdown. --addr defaults to
127.0.0.1:0 (ephemeral port; use --port-file to discover it).
Connections are keep-alive (up to --keep-alive requests each, default
100; 0 closes after every response) and evicted with a 408 after
--idle-timeout-ms without progress (slow-loris defense, default 5000).
--tenant-rate N admits N requests/second per X-Kmm-Tenant header value
(token bucket, burst N; 0 = unlimited); over-rate requests get 429 +
Retry-After, as do requests arriving while the worker queue is full
and connections past --max-conns (default 1024). A queue at half
capacity clamps request deadlines to 250 ms so overload degrades into
fast truncation. Bodies over --max-body-bytes get 413.
--mmap opens the index zero-copy: startup is O(1) in the index size
(section-table verified, payloads faulted in on demand) instead of
reading and checksumming the whole file up front.

index upgrade rewrites a legacy v2 index file as the current v3
container (atomically, in place unless -o is given); a rebuild from the
reference is never needed.

kmm search/map/serve read only v3 index files; v2 files fail with a
pointer to 'kmm index upgrade'.

--failpoints SPEC (or the KMM_FAILPOINTS env var) arms deterministic
fault-injection sites, e.g. 'serve.handler.err=1in10.err' or
'index.load.io=after2.err;serve.handler.slow=sleep50'. Sites:
index.load.io, index.save.io, pool.worker.panic, serve.handler.slow,
serve.handler.err, serve.conn.stall (accepted connection is never
read, so the idle eviction fires), serve.conn.reset (connection is
dropped at accept). Testing only; disarmed sites cost one atomic load.

bench diff compares two BENCH_*.json artifacts (see the experiments
binary) on wall-clock timing and on the deterministic cost counters.
--fail-on-regress PCT exits nonzero when any deterministic counter or
index byte attribution grows by more than PCT percent;
--fail-on-time-regress PCT additionally gates wall-clock (off by
default: timing is machine-dependent); --assert-identical fails on any
deterministic delta at all (the repeat-run check).";

/// Flags that take no value; their presence means `true`.
const BOOLEAN_FLAGS: &[&str] = &["stats", "assert-identical", "mmap", "json", "bidir"];

/// Per-command accepted flags (after `-j` canonicalises to `threads`).
const GENERATE_FLAGS: &[&str] = &["genome", "scale", "o"];
const INDEX_FLAGS: &[&str] = &["reference", "o", "threads", "bidir"];
const INDEX_UPGRADE_FLAGS: &[&str] = &["index", "o"];
const SIMULATE_FLAGS: &[&str] = &["reference", "reads", "len", "seed", "o"];
const MAP_FLAGS: &[&str] = &[
    "index",
    "reads",
    "k",
    "method",
    "both-strands",
    "threads",
    "timeout-ms",
    "stats",
    "stats-json",
    "trace-out",
    "slowest",
];
const SEARCH_FLAGS: &[&str] = &[
    "index",
    "pattern",
    "k",
    "method",
    "threads",
    "timeout-ms",
    "stats",
    "stats-json",
    "trace-out",
    "slowest",
];
const EXPLAIN_FLAGS: &[&str] = &["index", "pattern", "k", "method", "json", "threads"];
const SERVE_FLAGS: &[&str] = &[
    "index",
    "addr",
    "threads",
    "k",
    "method",
    "slowest",
    "port-file",
    "panic-pattern",
    "timeout-ms",
    "max-body-bytes",
    "failpoints",
    "mmap",
    "keep-alive",
    "idle-timeout-ms",
    "tenant-rate",
    "max-conns",
];
const BENCH_DIFF_FLAGS: &[&str] = &[
    "fail-on-regress",
    "fail-on-time-regress",
    "assert-identical",
];

struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(argv: &[String], known: &[&str]) -> Result<Args, CliError> {
        let mut flags = Vec::new();
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--").or_else(|| a.strip_prefix('-')) {
                // `-j N` is shorthand for `--threads N` wherever threads
                // are accepted.
                let name = if name == "j" { "threads" } else { name };
                if !known.contains(&name) {
                    let valid: Vec<String> = known.iter().map(|f| format!("--{f}")).collect();
                    return Err(CliError(format!(
                        "unknown flag --{name} (valid: {})",
                        valid.join(", ")
                    )));
                }
                if BOOLEAN_FLAGS.contains(&name) {
                    flags.push((name.to_string(), "true".to_string()));
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| CliError(format!("flag --{name} needs a value")))?;
                flags.push((name.to_string(), value.clone()));
            } else {
                return Err(CliError(format!("unexpected argument '{a}'")));
            }
        }
        Ok(Args { flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn get_all(&self, name: &str) -> Vec<String> {
        self.flags
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
            .collect()
    }

    fn require(&self, name: &str) -> Result<&str, CliError> {
        self.get(name)
            .ok_or_else(|| CliError(format!("missing required flag --{name}")))
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError(format!("bad value for --{name}: {v}"))),
        }
    }

    /// `--threads N` / `-j N`: defaults to the available parallelism;
    /// rejects zero and non-numeric values.
    fn threads(&self) -> Result<usize, CliError> {
        match self.get("threads") {
            None => Ok(bwt_kmismatch::par::available_threads()),
            Some(v) => match v.parse::<usize>() {
                Ok(0) => Err(CliError("--threads must be at least 1 (got 0)".to_string())),
                Ok(n) => Ok(n),
                Err(_) => Err(CliError(format!(
                    "bad value for --threads: '{v}' (expected a positive integer)"
                ))),
            },
        }
    }
}

/// `--timeout-ms T`: per-query/per-read cooperative deadline.
fn timeout(args: &Args) -> Result<Option<std::time::Duration>, CliError> {
    match args.get("timeout-ms") {
        None => Ok(None),
        Some(v) => match v.parse::<u64>() {
            Ok(0) => Err(CliError(
                "--timeout-ms must be at least 1 (got 0)".to_string(),
            )),
            Ok(ms) => Ok(Some(std::time::Duration::from_millis(ms))),
            Err(_) => Err(CliError(format!(
                "bad value for --timeout-ms: '{v}' (expected milliseconds)"
            ))),
        },
    }
}

fn stats_options(args: &Args) -> Result<cli::StatsOptions, CliError> {
    Ok(cli::StatsOptions {
        table: args.get("stats").is_some(),
        json_path: args.get("stats-json").map(PathBuf::from),
        trace_out: args.get("trace-out").map(PathBuf::from),
        slowest: match args.get("slowest") {
            None => None,
            Some(v) => Some(v.parse().map_err(|_| {
                CliError(format!(
                    "bad value for --slowest: '{v}' (expected a positive integer)"
                ))
            })?),
        },
    })
}

/// Strip the global logging flags (valid in any position, on any
/// command) from argv and install the process-wide event log they
/// describe. Returns the remaining arguments.
fn init_event_log(argv: Vec<String>) -> Result<Vec<String>, CliError> {
    let mut out = Vec::with_capacity(argv.len());
    let mut level = LogLevel::Info;
    let mut quiet = false;
    let mut json_path: Option<PathBuf> = None;
    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--log-level" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError("flag --log-level needs a value".to_string()))?;
                level = LogLevel::from_name(&v).ok_or_else(|| {
                    CliError(format!(
                        "bad value for --log-level: '{v}' (expected error|warn|info|debug)"
                    ))
                })?;
            }
            "--quiet" => quiet = true,
            "--log-json" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError("flag --log-json needs a value".to_string()))?;
                json_path = Some(PathBuf::from(v));
            }
            _ => out.push(a),
        }
    }
    let mut log = EventLog::new(level);
    if quiet {
        log = log.quiet();
    }
    if let Some(path) = &json_path {
        log = log
            .with_json_sink(path)
            .map_err(|e| CliError(format!("--log-json {}: {e}", path.display())))?;
    }
    events::init_global(log);
    Ok(out)
}

/// `--fail-on-regress` / `--fail-on-time-regress`: optional percentage.
fn parse_pct(args: &Args, name: &str) -> Result<Option<f64>, CliError> {
    match args.get(name) {
        None => Ok(None),
        Some(v) => v.parse::<f64>().map(Some).map_err(|_| {
            CliError(format!(
                "bad value for --{name}: '{v}' (expected a percentage)"
            ))
        }),
    }
}

/// `kmm bench diff A.json B.json [...]` — the only subcommand that
/// takes positional arguments, so it is parsed by hand before the
/// flag-only `Args` machinery sees the rest.
fn bench(rest: &[String]) -> Result<String, CliError> {
    let Some((sub, rest)) = rest.split_first() else {
        return Err(CliError(
            "bench needs a subcommand (try: bench diff)".to_string(),
        ));
    };
    if sub != "diff" {
        return Err(CliError(format!(
            "unknown bench subcommand '{sub}' (try: bench diff)"
        )));
    }
    let mut paths = Vec::new();
    let mut flag_args = Vec::new();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--").or_else(|| a.strip_prefix('-')) {
            flag_args.push(a.clone());
            if !BOOLEAN_FLAGS.contains(&name) {
                if let Some(v) = it.next() {
                    flag_args.push(v.clone());
                }
            }
        } else {
            paths.push(PathBuf::from(a));
        }
    }
    if paths.len() != 2 {
        return Err(CliError(format!(
            "bench diff needs exactly two files: <baseline.json> <candidate.json> (got {})",
            paths.len()
        )));
    }
    let args = Args::parse(&flag_args, BENCH_DIFF_FLAGS)?;
    let opts = kmm_bench::diff::DiffOptions {
        fail_on_regress: parse_pct(&args, "fail-on-regress")?,
        fail_on_time_regress: parse_pct(&args, "fail-on-time-regress")?,
        assert_identical: args.get("assert-identical").is_some(),
    };
    cli::bench_diff(&paths[0], &paths[1], &opts)
}

fn run() -> Result<String, CliError> {
    // Arm failpoints from the environment before anything can hit a
    // site; a bad spec is a startup error, not a silently inert one.
    kmm_faults::arm_from_env().map_err(|e| CliError(format!("KMM_FAILPOINTS: {e}")))?;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let argv = init_event_log(argv)?;
    let Some((command, rest)) = argv.split_first() else {
        return Err(CliError(USAGE.to_string()));
    };
    let out_path = |a: &Args| -> Result<PathBuf, CliError> { Ok(PathBuf::from(a.require("o")?)) };
    match command.as_str() {
        "generate" => {
            let args = Args::parse(rest, GENERATE_FLAGS)?;
            let genome = cli::parse_genome(args.require("genome")?)?;
            let scale: f64 = args.parsed("scale", 0.01)?;
            cli::generate(genome, scale, &out_path(&args)?)
        }
        "index" => {
            // `kmm index upgrade` converts a legacy v2 file to the v3
            // container without rebuilding from the reference.
            if rest.first().map(String::as_str) == Some("upgrade") {
                let args = Args::parse(&rest[1..], INDEX_UPGRADE_FLAGS)?;
                let input = PathBuf::from(args.require("index")?);
                let out = args.get("o").map(PathBuf::from);
                return cli::index_upgrade(&input, out.as_deref());
            }
            let args = Args::parse(rest, INDEX_FLAGS)?;
            cli::index_opts(
                &PathBuf::from(args.require("reference")?),
                &out_path(&args)?,
                args.threads()?,
                args.get("bidir").is_some(),
            )
        }
        "simulate" => {
            let args = Args::parse(rest, SIMULATE_FLAGS)?;
            cli::simulate(
                &PathBuf::from(args.require("reference")?),
                args.parsed("reads", 50usize)?,
                args.parsed("len", 100usize)?,
                args.parsed("seed", 42u64)?,
                &out_path(&args)?,
            )
        }
        "map" => {
            let args = Args::parse(rest, MAP_FLAGS)?;
            let method = cli::parse_method(args.get("method").unwrap_or("a"))?;
            let both = args
                .get("both-strands")
                .map(|v| v == "true")
                .unwrap_or(false);
            let stats = stats_options(&args)?;
            let mut stdout = std::io::stdout().lock();
            cli::map_reads(
                &PathBuf::from(args.require("index")?),
                &PathBuf::from(args.require("reads")?),
                args.parsed("k", 5usize)?,
                method,
                both,
                args.threads()?,
                timeout(&args)?,
                &stats,
                &mut stdout,
            )
        }
        "search" => {
            let args = Args::parse(rest, SEARCH_FLAGS)?;
            let method = cli::parse_method(args.get("method").unwrap_or("a"))?;
            let stats = stats_options(&args)?;
            let patterns = args.get_all("pattern");
            if patterns.is_empty() {
                return Err(CliError("missing required flag --pattern".to_string()));
            }
            let mut stdout = std::io::stdout().lock();
            cli::search_patterns(
                &PathBuf::from(args.require("index")?),
                &patterns,
                args.parsed("k", 3usize)?,
                method,
                args.threads()?,
                timeout(&args)?,
                &stats,
                &mut stdout,
            )
        }
        "explain" => {
            let args = Args::parse(rest, EXPLAIN_FLAGS)?;
            // Accepted for interface symmetry with search/map; the
            // explain engine always runs its methods serially so the
            // report is identical at any requested width.
            let _ = args.threads()?;
            // An empty list selects the library's default comparison
            // set (the paper's four, plus bidir when the index carries
            // the reverse BWT) — the choice needs the loaded index.
            let names = args.get_all("method");
            let methods = names
                .iter()
                .map(|n| cli::parse_method(n))
                .collect::<Result<Vec<_>, _>>()?;
            let mut stdout = std::io::stdout().lock();
            cli::explain_query(
                &PathBuf::from(args.require("index")?),
                args.require("pattern")?,
                args.parsed("k", 3usize)?,
                &methods,
                args.get("json").is_some(),
                &mut stdout,
            )
        }
        "serve" => {
            let args = Args::parse(rest, SERVE_FLAGS)?;
            if let Some(spec) = args.get("failpoints") {
                kmm_faults::arm(spec).map_err(|e| CliError(format!("--failpoints: {e}")))?;
            }
            let config = bwt_kmismatch::serve::ServeConfig {
                addr: args.get("addr").unwrap_or("127.0.0.1:0").to_string(),
                threads: args.threads()?,
                k: args.parsed("k", 3usize)?,
                method: cli::parse_method(args.get("method").unwrap_or("a"))?,
                slowest: args.parsed("slowest", 16usize)?,
                panic_pattern: args.get("panic-pattern").map(String::from),
                port_file: args.get("port-file").map(PathBuf::from),
                timeout_ms: match args.get("timeout-ms") {
                    None => None,
                    Some(_) => timeout(&args)?.map(|d| d.as_millis() as u64),
                },
                max_body_bytes: args.parsed(
                    "max-body-bytes",
                    bwt_kmismatch::serve::DEFAULT_MAX_BODY_BYTES,
                )?,
                prefer_mmap: args.get("mmap").is_some(),
                keep_alive_requests: args.parsed(
                    "keep-alive",
                    bwt_kmismatch::serve::DEFAULT_KEEP_ALIVE_REQUESTS,
                )?,
                idle_timeout_ms: args.parsed(
                    "idle-timeout-ms",
                    bwt_kmismatch::serve::DEFAULT_IDLE_TIMEOUT_MS,
                )?,
                tenant_rate: args.parsed("tenant-rate", 0u64)?,
                max_conns: args.parsed("max-conns", bwt_kmismatch::serve::DEFAULT_MAX_CONNS)?,
            };
            bwt_kmismatch::serve::run(&PathBuf::from(args.require("index")?), config)
        }
        "bench" => bench(rest),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError(format!("unknown command '{other}'\n\n{USAGE}"))),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(summary) => {
            eprintln!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("kmm: {e}");
            ExitCode::FAILURE
        }
    }
}
