//! `kmm serve`: a zero-dependency blocking HTTP/1.1 daemon over a loaded
//! index.
//!
//! The listener is a plain [`std::net::TcpListener`]; requests are
//! handed to `kmm-par` workers through a bounded queue. When all workers
//! are busy and the queue is full the acceptor does not block: it sheds
//! the connection with an immediate `429 Too Many Requests` (plus
//! `Retry-After`), so `accept` keeps running and health checks stay
//! responsive under overload. Every connection is handled one-request,
//! `Connection: close`, which keeps the protocol surface small enough to
//! hand-verify.
//!
//! Endpoints:
//!
//! | Route | Method | Body |
//! |---|---|---|
//! | `/healthz` | GET | `ok` |
//! | `/metrics` | GET | Prometheus text exposition (process metrics, histogram buckets, per-endpoint sliding-window latency) |
//! | `/stats.json` | GET | the `MetricsSnapshot` JSON document |
//! | `/slow.json` | GET | the flight recorder's K slowest queries with full span trees |
//! | `/trace.json` | GET | Chrome trace-event JSON of retained query traces |
//! | `/search` | POST | `{"pattern": "ACGT..", "k"?, "method"?}` → occurrence list |
//! | `/map` | POST | `{"read": "ACGT..", "k"?, "both_strands"?}` → alignment list |
//! | `/explain` | POST | `{"pattern": "ACGT..", "k"?, "methods"?: ["a", "bwt", ..]}` → `kmm-explain/v1` cost report |
//! | `/dashboard` | GET | self-contained HTML dashboard polling `/stats.json`, `/slow.json`, `/explain` |
//! | `/shutdown` | POST | stop accepting, drain, exit |
//!
//! `POST /search` runs the exact [`KMismatchIndex::search_recorded`]
//! path the CLI uses, so its results are identical to `kmm search`.
//! Each request records into a private [`TraceRecorder`] shard (sharing
//! the server's trace epoch) absorbed after the response, so the flight
//! recorder always holds the K slowest queries the daemon has served. A
//! handler panic — reachable deliberately through the
//! `--panic-pattern` fault-injection hook or the `pool.worker.panic`
//! failpoint — is caught per request: the client gets a 500,
//! `serve.errors` ticks, and neither the recorder nor the worker pool is
//! poisoned.
//!
//! With `--timeout-ms` (or a per-request `"timeout_ms"` body field), the
//! search/map runs under a cooperative deadline: a query that exceeds
//! its budget returns `504 Gateway Timeout` whose JSON body carries
//! `"truncated": true` along with the (verified, partial) results found
//! so far. The `serve.handler.slow` and `serve.handler.err` failpoints
//! inject latency and failures at route entry for chaos testing.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use kmm_core::{
    CancelToken, KMismatchIndex, MapOutcome, MapperConfig, Method, Outcome, ReadMapper, Strand,
};
use kmm_par::ThreadPool;
use kmm_telemetry::alloc::{fmt_bytes, mem_stats, phase_scope, MemPhase};
use kmm_telemetry::{
    chrome_trace_json, events, prometheus_mem_text, slow_queries_json, Counter, Json, NoopRecorder,
    Recorder, SlidingWindow, TraceConfig, TraceRecorder,
};

use crate::cli::{self, CliError, CliResult};

/// Configuration for one serving process.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker count (1 = handle connections on the acceptor thread).
    pub threads: usize,
    /// Default mismatch budget for `/search` and `/map` requests that
    /// don't send their own `k`.
    pub k: usize,
    /// Default search method.
    pub method: Method,
    /// Flight-recorder capacity (`/slow.json` keeps this many).
    pub slowest: usize,
    /// Fault-injection hook: a `/search` or `/map` request whose
    /// pattern equals this string panics inside the handler. Testing
    /// only — exercises the panic-isolation path end to end.
    pub panic_pattern: Option<String>,
    /// Write the bound port (decimal, one line) here once listening —
    /// lets scripts using port 0 discover the ephemeral port.
    pub port_file: Option<PathBuf>,
    /// Default per-request deadline for `/search` and `/map` in
    /// milliseconds; a request body may override it with `"timeout_ms"`.
    /// `None` means no deadline.
    pub timeout_ms: Option<u64>,
    /// Reject request bodies whose declared `Content-Length` exceeds
    /// this, with a `413` sent before reading the body.
    pub max_body_bytes: usize,
    /// Open the index zero-copy (`mmap`) instead of reading it into
    /// memory. Startup cost becomes O(1) in the index size: the v3
    /// section table is verified, the payloads are borrowed from the
    /// mapping and faulted in on demand. Falls back to the read path if
    /// the platform cannot map the file.
    pub prefer_mmap: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 1,
            k: 3,
            method: Method::ALGORITHM_A,
            slowest: 16,
            panic_pattern: None,
            port_file: None,
            timeout_ms: None,
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
            prefer_mmap: false,
        }
    }
}

/// Cap on header bytes and (default) on declared body length — this is
/// an operational endpoint, not a general web server.
const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Default for [`ServeConfig::max_body_bytes`].
pub const DEFAULT_MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// How long the acceptor sleeps between polls of the stop flag when no
/// connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(15);

/// One parsed request.
struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
}

/// One response: status, content type, body, optional `Retry-After`.
struct Response {
    status: u16,
    content_type: &'static str,
    body: Vec<u8>,
    retry_after: Option<u64>,
}

impl Response {
    fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            retry_after: None,
        }
    }

    fn json(status: u16, doc: &Json) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: doc.to_pretty().into_bytes(),
            retry_after: None,
        }
    }

    fn with_retry_after(mut self, seconds: u64) -> Response {
        self.retry_after = Some(seconds);
        self
    }
}

/// Per-endpoint request accounting: lifetime totals plus a sliding
/// one-minute latency window for p50/p95/p99.
struct EndpointStats {
    route: &'static str,
    requests: std::sync::atomic::AtomicU64,
    errors: std::sync::atomic::AtomicU64,
    window: SlidingWindow,
}

impl EndpointStats {
    fn new(route: &'static str) -> EndpointStats {
        EndpointStats {
            route,
            requests: std::sync::atomic::AtomicU64::new(0),
            errors: std::sync::atomic::AtomicU64::new(0),
            window: SlidingWindow::new(1, 60),
        }
    }

    fn record(&self, latency_ns: u64, is_error: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if is_error {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.window.record(latency_ns, is_error);
    }
}

/// Routes with dedicated accounting; anything else lands in `other`.
const ROUTES: [&str; 10] = [
    "/healthz",
    "/metrics",
    "/stats.json",
    "/slow.json",
    "/trace.json",
    "/search",
    "/map",
    "/explain",
    "/dashboard",
    "/shutdown",
];

/// Shared server state: the index, the global trace recorder, and the
/// per-endpoint accounting. Only `&self` methods — shared across workers
/// by reference under `std::thread::scope`.
struct ServerState {
    index: KMismatchIndex,
    config: ServeConfig,
    recorder: TraceRecorder,
    endpoints: Vec<EndpointStats>,
    other: EndpointStats,
    stop: AtomicBool,
}

/// Monotonic request-id source: every parsed request gets `req-N`,
/// which tags its access-log event, its trace shard, and any JSON error
/// body `/search` and `/map` return. Process-wide (not per-server) so
/// ids stay unique even when several servers share one event log.
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

fn next_request_id() -> String {
    format!("req-{}", NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed))
}

impl ServerState {
    fn new(index: KMismatchIndex, config: ServeConfig) -> ServerState {
        let recorder = TraceRecorder::with_config(TraceConfig {
            flight_capacity: config.slowest,
            ..TraceConfig::default()
        });
        ServerState {
            index,
            recorder,
            endpoints: ROUTES.iter().map(|r| EndpointStats::new(r)).collect(),
            other: EndpointStats::new("other"),
            stop: AtomicBool::new(false),
            config,
        }
    }

    fn endpoint(&self, path: &str) -> &EndpointStats {
        self.endpoints
            .iter()
            .find(|e| e.route == path)
            .unwrap_or(&self.other)
    }

    fn total_requests(&self) -> u64 {
        self.endpoints
            .iter()
            .chain(std::iter::once(&self.other))
            .map(|e| e.requests.load(Ordering::Relaxed))
            .sum()
    }

    fn total_errors(&self) -> u64 {
        self.endpoints
            .iter()
            .chain(std::iter::once(&self.other))
            .map(|e| e.errors.load(Ordering::Relaxed))
            .sum()
    }
}

/// Bounded handoff from the acceptor to the worker threads. `try_push`
/// never blocks: a full queue hands the stream back so the acceptor can
/// shed it with a `429` instead of stalling `accept`. `pop` blocks while
/// the queue is empty and open; closing wakes everyone and lets workers
/// drain what is already queued.
struct HandoffQueue {
    capacity: usize,
    inner: Mutex<(std::collections::VecDeque<TcpStream>, bool)>,
    readable: Condvar,
}

impl HandoffQueue {
    fn new(capacity: usize) -> HandoffQueue {
        HandoffQueue {
            capacity: capacity.max(1),
            inner: Mutex::new((std::collections::VecDeque::new(), false)),
            readable: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, (std::collections::VecDeque<TcpStream>, bool)> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Enqueue unless full or closed; on either, the stream comes back
    /// to the caller, which decides how to refuse it.
    fn try_push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut guard = self.lock();
        if guard.1 || guard.0.len() >= self.capacity {
            return Err(stream);
        }
        guard.0.push_back(stream);
        drop(guard);
        self.readable.notify_one();
        Ok(())
    }

    fn pop(&self) -> Option<TcpStream> {
        let mut guard = self.lock();
        loop {
            if let Some(stream) = guard.0.pop_front() {
                return Some(stream);
            }
            if guard.1 {
                return None;
            }
            guard = self.readable.wait(guard).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn close(&self) {
        self.lock().1 = true;
        self.readable.notify_all();
    }
}

/// A server running on a background thread (for tests and embedding).
/// The CLI path ([`run`]) serves on the calling thread instead.
pub struct Server {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<String>,
}

impl Server {
    /// Bind and start serving `index` on a background thread.
    pub fn start(index: KMismatchIndex, config: ServeConfig) -> CliResult<Server> {
        let listener = bind(&config)?;
        let addr = listener.local_addr()?;
        let thread = std::thread::spawn(move || serve_on(listener, index, config, None));
        Ok(Server { addr, thread })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Wait for the server to exit (after a `POST /shutdown`) and return
    /// its summary line.
    pub fn join(self) -> String {
        self.thread
            .join()
            .unwrap_or_else(|_| "server thread panicked".to_string())
    }
}

/// `kmm serve`: load the index at `index_path` and serve it on the
/// calling thread until a `POST /shutdown` arrives. Returns the summary.
pub fn run(index_path: &std::path::Path, config: ServeConfig) -> CliResult<String> {
    let load_start = Instant::now();
    let (index, open) = cli::open_index_recorded(index_path, config.prefer_mmap, &NoopRecorder)?;
    let cold_start = load_start.elapsed();
    // Cold-start line: with `--mmap` the load is O(1) in the index size
    // (io_bytes = 0, the file is borrowed), so this duration stays flat
    // as the index grows; the read path scales with file_bytes.
    events::info(
        "serve",
        format!(
            "kmm serve: index opened via {} in {:.1}ms ({} file, {} read, {} mapped)",
            open.mode.name(),
            cold_start.as_secs_f64() * 1e3,
            fmt_bytes(open.file_bytes),
            fmt_bytes(open.io_bytes),
            fmt_bytes(open.bytes_mapped),
        ),
        &[
            ("load_mode", open.mode.name().to_string()),
            ("load_us", cold_start.as_micros().to_string()),
            ("file_bytes", open.file_bytes.to_string()),
            ("io_bytes", open.io_bytes.to_string()),
            ("bytes_mapped", open.bytes_mapped.to_string()),
        ],
    );
    let listener = bind(&config)?;
    let addr = listener.local_addr()?;
    events::info(
        "serve",
        format!(
            "kmm serve: listening on {addr} ({} worker{}, {} bp indexed)",
            config.threads,
            if config.threads == 1 { "" } else { "s" },
            index.len()
        ),
        &[
            ("addr", addr.to_string()),
            ("workers", config.threads.to_string()),
            ("indexed_bp", index.len().to_string()),
        ],
    );
    Ok(serve_on(listener, index, config, Some(open)))
}

fn bind(config: &ServeConfig) -> CliResult<TcpListener> {
    let listener = TcpListener::bind(&config.addr)
        .map_err(|e| CliError(format!("cannot bind {}: {e}", config.addr)))?;
    if let Some(path) = &config.port_file {
        let mut f = cli::create_output_file(path)?;
        writeln!(f, "{}", listener.local_addr()?.port())?;
    }
    Ok(listener)
}

/// The accept/dispatch loop; returns the shutdown summary.
fn serve_on(
    listener: TcpListener,
    index: KMismatchIndex,
    config: ServeConfig,
    open: Option<kmm_bwt::OpenStats>,
) -> String {
    let _serve = phase_scope(MemPhase::Serve);
    let threads = config.threads.max(1);
    let state = ServerState::new(index, config);
    // Surface how the index got here on `/metrics` and `/stats.json`:
    // `index.load.mode` is 1 (read) or 2 (mmap), and exactly one of
    // io_bytes / bytes_mapped is non-zero.
    if let Some(open) = open {
        state.recorder.add(Counter::IndexLoadIoBytes, open.io_bytes);
        state
            .recorder
            .add(Counter::IndexLoadMappedBytes, open.bytes_mapped);
        state
            .recorder
            .add(Counter::IndexLoadMode, open.mode.as_counter());
    }
    listener
        .set_nonblocking(true)
        .expect("cannot poll the listener");
    let pool = ThreadPool::new(threads);
    if pool.is_serial() {
        while !state.stop.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _)) => handle_connection(stream, &state, 0),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL)
                }
                Err(_) => break,
            }
        }
    } else {
        // Worker 0 accepts; workers 1..N drain the bounded queue. A full
        // queue sheds the connection with an immediate 429 rather than
        // blocking the acceptor — overload slows clients down, it never
        // stops `accept`.
        let queue = HandoffQueue::new(threads * 4);
        pool.broadcast(|tid| {
            if tid == 0 {
                while !state.stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if let Err(stream) = queue.try_push(stream) {
                                shed_connection(stream, &state);
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(ACCEPT_POLL)
                        }
                        Err(_) => break,
                    }
                }
                // Graceful drain: stop admitting, let workers finish
                // what is already queued and in flight.
                queue.close();
            } else {
                while let Some(stream) = queue.pop() {
                    handle_connection(stream, &state, tid);
                }
            }
        });
    }
    let summary = format!(
        "served {} requests ({} errors)",
        state.total_requests(),
        state.total_errors()
    );
    events::info(
        "serve",
        format!("shutdown: {summary}"),
        &[
            ("requests", state.total_requests().to_string()),
            ("errors", state.total_errors().to_string()),
        ],
    );
    summary
}

/// Refuse a connection the queue would not take: best-effort `429` with
/// `Retry-After`, written on the acceptor thread with a short write
/// timeout so a slow client cannot stall `accept` either.
fn shed_connection(mut stream: TcpStream, state: &ServerState) {
    state.recorder.add(Counter::ServeShed, 1);
    state.other.record(0, true);
    // Shed connections never reach `handle_connection`, so they get
    // their own access-log line here — with the same outcome field the
    // per-request log carries, a 429 is grep-able alongside 504s.
    let req_id = next_request_id();
    events::warn(
        "serve.access",
        "connection shed -> 429",
        &[
            ("request_id", req_id),
            ("status", "429".to_string()),
            ("outcome", "shed".to_string()),
        ],
    );
    if stream.set_nonblocking(false).is_err()
        || stream
            .set_write_timeout(Some(Duration::from_millis(250)))
            .is_err()
        || stream
            .set_read_timeout(Some(Duration::from_millis(250)))
            .is_err()
    {
        return;
    }
    let _ = write_response(
        &mut stream,
        &Response::text(429, "server overloaded, retry later\n").with_retry_after(1),
    );
    // Drain whatever the client managed to send: closing with unread
    // bytes in the receive buffer would RST the connection and can
    // destroy the 429 before the client reads it.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 1024];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

/// Prepare an accepted socket: blocking mode plus read/write timeouts so
/// a stuck client cannot pin a worker forever. A socket that refuses its
/// options is already broken — report failure instead of proceeding with
/// an unbounded read.
fn configure_stream(stream: &TcpStream) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    Ok(())
}

/// Serve one connection: read a request, route it (panic-isolated),
/// write the response, account for it.
fn handle_connection(mut stream: TcpStream, state: &ServerState, worker: usize) {
    if configure_stream(&stream).is_err() {
        // No timeouts means no safe way to read or respond: close.
        state.other.record(0, true);
        return;
    }
    let request = match read_request(&mut stream, state.config.max_body_bytes) {
        Ok(r) => r,
        Err(response) => {
            let req_id = next_request_id();
            state.other.record(0, true);
            state.recorder.add(Counter::ServeErrors, 1);
            events::warn(
                "serve.access",
                format!("malformed request -> {}", response.status),
                &[
                    ("request_id", req_id),
                    ("status", response.status.to_string()),
                    ("outcome", "error".to_string()),
                ],
            );
            let _ = write_response(&mut stream, &response);
            return;
        }
    };
    let req_id = next_request_id();
    let start = Instant::now();
    state.recorder.add(Counter::ServeRequests, 1);
    let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // Failpoint: `pool.worker.panic` exercises the panic-isolation
        // path — the catch below keeps the daemon up.
        kmm_faults::panic_gate("pool.worker.panic");
        route(state, &request, worker, &req_id)
    }))
    .unwrap_or_else(|_| error_response(500, "internal error: request handler panicked", &req_id));
    let is_error = response.status >= 400;
    if is_error {
        state.recorder.add(Counter::ServeErrors, 1);
    }
    let elapsed = start.elapsed();
    state
        .endpoint(&request.path)
        .record(elapsed.as_nanos() as u64, is_error);
    // One access-log event per request; its request_id is the same id a
    // JSON error body carries, so client-side and server-side views of a
    // failure can be joined.
    let message = format!("{} {} -> {}", request.method, request.path, response.status);
    // `outcome` classifies the handler result beyond the bare status
    // code: a 504 body still carries verified partial results
    // ("truncated"), a 429 was refused before any handler ran ("shed").
    let outcome = match response.status {
        504 => "truncated",
        429 => "shed",
        s if s >= 400 => "error",
        _ => "ok",
    };
    let fields = [
        ("request_id", req_id),
        ("status", response.status.to_string()),
        ("duration_us", elapsed.as_micros().to_string()),
        ("outcome", outcome.to_string()),
    ];
    if is_error {
        events::warn("serve.access", message, &fields);
    } else {
        events::info("serve.access", message, &fields);
    }
    let _ = write_response(&mut stream, &response);
}

/// Read one request. Failures come back as the response to send: `413`
/// for a declared body over `max_body` (refused before reading a byte of
/// it), `411` for a `POST` without `Content-Length`, `400` for anything
/// malformed.
fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, Response> {
    let bad = |what: &str| Response::text(400, format!("bad request: {what}\n"));
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Err(bad("headers too large"));
        }
        let n = stream.read(&mut chunk).map_err(|e| bad(&e.to_string()))?;
        if n == 0 {
            return Err(bad("connection closed"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..header_end]).map_err(|_| bad("non-utf8 headers"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("empty request line"))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| bad("missing request path"))?
        .to_string();
    let mut content_length: Option<usize> = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = Some(
                    value
                        .trim()
                        .parse()
                        .map_err(|_| bad("unparseable content-length"))?,
                );
            }
        }
    }
    let content_length = match content_length {
        Some(len) => len,
        // A POST without a length has a body we cannot frame — refuse it
        // rather than guess (chunked encoding is not supported here).
        None if method == "POST" => {
            return Err(Response::text(411, "POST requires Content-Length\n"))
        }
        None => 0,
    };
    if content_length > max_body {
        return Err(Response::text(
            413,
            format!("body of {content_length} bytes exceeds the {max_body}-byte limit\n"),
        ));
    }
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|e| bad(&e.to_string()))?;
        if n == 0 {
            return Err(bad("truncated body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request { method, path, body })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let reason = match response.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    };
    let mut head = format!(
        "HTTP/1.1 {} {reason}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        response.content_type,
        response.body.len()
    );
    if let Some(seconds) = response.retry_after {
        head.push_str(&format!("Retry-After: {seconds}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

/// JSON error body tagged with the request id — the same id the access
/// log records, so a client-quoted failure can be matched to the
/// server-side line.
fn error_response(status: u16, message: impl Into<String>, req_id: &str) -> Response {
    Response::json(
        status,
        &Json::obj([
            ("error", Json::Str(message.into())),
            ("request_id", Json::Str(req_id.to_string())),
        ]),
    )
}

fn route(state: &ServerState, request: &Request, worker: usize, req_id: &str) -> Response {
    // Failpoints at route entry: `serve.handler.slow` injects latency
    // (the sleep happens inside `check`), `serve.handler.err` fails the
    // request with a 500 (or panics, exercising the catch_unwind above).
    let _ = kmm_faults::check("serve.handler.slow");
    match kmm_faults::check("serve.handler.err") {
        Some(kmm_faults::Action::Err) => {
            return Response::text(500, "injected fault at failpoint 'serve.handler.err'\n")
        }
        Some(kmm_faults::Action::Panic) => {
            panic!("injected fault at failpoint 'serve.handler.err'")
        }
        _ => {}
    }
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/metrics") => Response {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: render_metrics(state).into_bytes(),
            retry_after: None,
        },
        ("GET", "/stats.json") => Response::json(200, &state.recorder.snapshot().to_json()),
        ("GET", "/slow.json") => {
            Response::json(200, &slow_queries_json(&state.recorder.flight().slowest()))
        }
        ("GET", "/trace.json") => Response::json(200, &chrome_trace_json(&state.recorder.traces())),
        ("GET", "/dashboard") => Response {
            status: 200,
            content_type: "text/html; charset=utf-8",
            body: crate::dashboard::HTML.as_bytes().to_vec(),
            retry_after: None,
        },
        ("POST", "/search") => handle_search(state, &request.body, worker, req_id),
        ("POST", "/map") => handle_map(state, &request.body, worker, req_id),
        ("POST", "/explain") => handle_explain(state, &request.body, req_id),
        ("POST", "/shutdown") => {
            state.stop.store(true, Ordering::Relaxed);
            Response::text(200, "shutting down\n")
        }
        ("GET", "/search" | "/map" | "/explain" | "/shutdown") => {
            Response::text(405, "use POST for this endpoint\n")
        }
        _ => Response::text(404, format!("no route for {}\n", request.path)),
    }
}

/// Process metrics plus per-endpoint HTTP series.
fn render_metrics(state: &ServerState) -> String {
    let mut out = state.recorder.snapshot().to_prometheus();
    out.push_str("# HELP kmm_http_requests_total Requests handled since startup, by endpoint.\n");
    out.push_str("# TYPE kmm_http_requests_total counter\n");
    for e in state.endpoints.iter().chain(std::iter::once(&state.other)) {
        out.push_str(&format!(
            "kmm_http_requests_total{{endpoint=\"{}\"}} {}\n",
            e.route,
            e.requests.load(Ordering::Relaxed)
        ));
    }
    out.push_str("# HELP kmm_http_errors_total Error responses (status >= 400) since startup, by endpoint.\n");
    out.push_str("# TYPE kmm_http_errors_total counter\n");
    for e in state.endpoints.iter().chain(std::iter::once(&state.other)) {
        out.push_str(&format!(
            "kmm_http_errors_total{{endpoint=\"{}\"}} {}\n",
            e.route,
            e.errors.load(Ordering::Relaxed)
        ));
    }
    // Last-minute latency percentiles per endpoint (gauges: they move
    // with the window). Idle endpoints are emitted as zeros rather than
    // skipped: a series that disappears when quiet breaks rate() and
    // absence-based alerting downstream.
    out.push_str("# HELP kmm_http_window_requests Requests in the trailing one-minute window.\n");
    out.push_str("# TYPE kmm_http_window_requests gauge\n");
    out.push_str(
        "# HELP kmm_http_window_errors Error responses in the trailing one-minute window.\n",
    );
    out.push_str("# TYPE kmm_http_window_errors gauge\n");
    out.push_str("# HELP kmm_http_latency_ns Latency percentiles over the trailing one-minute window (0 when idle).\n");
    out.push_str("# TYPE kmm_http_latency_ns gauge\n");
    out.push_str("# HELP kmm_http_window_samples Latency samples currently held in the sliding window histogram.\n");
    out.push_str("# TYPE kmm_http_window_samples gauge\n");
    for e in state.endpoints.iter().chain(std::iter::once(&state.other)) {
        let w = e.window.summary();
        out.push_str(&format!(
            "kmm_http_window_requests{{endpoint=\"{}\"}} {}\n",
            e.route, w.count
        ));
        out.push_str(&format!(
            "kmm_http_window_samples{{endpoint=\"{}\"}} {}\n",
            e.route, w.hist.count
        ));
        out.push_str(&format!(
            "kmm_http_window_errors{{endpoint=\"{}\"}} {}\n",
            e.route, w.errors
        ));
        for (q, label) in [(0.50, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
            // An empty window reports percentile 0 (not NaN, not an
            // absent series).
            out.push_str(&format!(
                "kmm_http_latency_ns{{endpoint=\"{}\",quantile=\"{label}\"}} {}\n",
                e.route,
                w.hist.percentile(q)
            ));
        }
    }
    // Flight-recorder occupancy: how full the slowest-K ring is. When
    // occupancy == capacity, `/slow.json` is evicting — every new slow
    // query displaces a retained one.
    let flight = state.recorder.flight();
    out.push_str(
        "# HELP kmm_flight_recorder_occupancy Query traces currently retained by the flight recorder.\n",
    );
    out.push_str("# TYPE kmm_flight_recorder_occupancy gauge\n");
    out.push_str(&format!("kmm_flight_recorder_occupancy {}\n", flight.len()));
    out.push_str(
        "# HELP kmm_flight_recorder_capacity Flight recorder capacity (the K of slowest-K).\n",
    );
    out.push_str("# TYPE kmm_flight_recorder_capacity gauge\n");
    out.push_str(&format!(
        "kmm_flight_recorder_capacity {}\n",
        flight.capacity()
    ));
    out.push_str(&prometheus_mem_text(&mem_stats()));
    out
}

/// Per-request tracing shard sharing the server recorder's epoch; merged
/// into the global recorder after the query so `/slow.json` and
/// `/metrics` see every request. Creating it on panic-prone paths is
/// deliberate: a panicking handler only loses its own shard.
fn request_shard(state: &ServerState, worker: usize) -> TraceRecorder {
    TraceRecorder::shard(state.recorder.trace_epoch(), worker as u32, true)
}

fn absorb_shard(state: &ServerState, shard: &TraceRecorder) {
    state.recorder.absorb(&shard.snapshot());
    state.recorder.absorb_traces(shard.drain());
}

fn body_json(body: &[u8]) -> Result<Json, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not utf-8".to_string())?;
    Json::parse(text).map_err(|e| format!("bad json body: {e}"))
}

/// Effective deadline for a request: the body's `"timeout_ms"` overrides
/// the server default; `0` is rejected upstream by token semantics (an
/// already-expired token truncates immediately, which is the documented
/// meaning of a zero budget).
fn request_timeout(state: &ServerState, doc: &Json) -> Option<Duration> {
    doc.get("timeout_ms")
        .and_then(Json::as_u64)
        .or(state.config.timeout_ms)
        .map(Duration::from_millis)
}

fn handle_search(state: &ServerState, body: &[u8], worker: usize, req_id: &str) -> Response {
    let doc = match body_json(body) {
        Ok(d) => d,
        Err(msg) => return error_response(400, msg, req_id),
    };
    let Some(pattern) = doc.get("pattern").and_then(Json::as_str) else {
        return error_response(400, "missing \"pattern\"", req_id);
    };
    if state.config.panic_pattern.as_deref() == Some(pattern) {
        panic!("injected fault: panic pattern received");
    }
    let k = doc
        .get("k")
        .and_then(Json::as_u64)
        .map_or(state.config.k, |v| v as usize);
    let method = match doc.get("method").and_then(Json::as_str) {
        None => state.config.method,
        Some(name) => match cli::parse_method(name) {
            Ok(m) => m,
            Err(e) => return error_response(400, e.to_string(), req_id),
        },
    };
    let encoded = match kmm_dna::encode(pattern.as_bytes()) {
        Ok(p) => p,
        Err(e) => return error_response(400, format!("bad pattern: {e}"), req_id),
    };
    let shard = request_shard(state, worker);
    shard.annotate(&format!("http=/search id={req_id}"));
    let (result, truncated) = match request_timeout(state, &doc) {
        Some(budget) => {
            let token = CancelToken::with_deadline(budget);
            match state
                .index
                .search_with_deadline_recorded(&encoded, k, method, &token, &shard)
            {
                Outcome::Complete(r) => (r, false),
                Outcome::Truncated(r) => (r, true),
            }
        }
        None => (
            state.index.search_recorded(&encoded, k, method, &shard),
            false,
        ),
    };
    absorb_shard(state, &shard);
    let occurrences: Vec<Json> = result
        .occurrences
        .iter()
        .map(|o| {
            Json::obj([
                ("position", Json::UInt(o.position as u64)),
                ("mismatches", Json::UInt(o.mismatches as u64)),
            ])
        })
        .collect();
    // A truncated search is a 504 — but the body still carries every
    // verified match found before the deadline, flagged as partial.
    Response::json(
        if truncated { 504 } else { 200 },
        &Json::obj([
            ("count", Json::UInt(occurrences.len() as u64)),
            ("k", Json::UInt(k as u64)),
            ("method", Json::Str(method.label().to_string())),
            ("truncated", Json::Bool(truncated)),
            ("occurrences", Json::Arr(occurrences)),
        ]),
    )
}

/// `POST /explain`: the CLI's EXPLAIN engine over the served index.
/// Body: `{"pattern": "ACGT..", "k"?, "methods"?: ["a", "bwt", ...]}`.
/// Without `"methods"` the comparison set is BWT vs Algorithm A — the
/// two always-resident methods — so a default explain never triggers a
/// lazy suffix-tree build on a large served index. The report is the
/// same deterministic `kmm-explain/v1` document `kmm explain --json`
/// prints; the query runs serially on the handling worker and is not
/// recorded into the flight recorder (its recorder never reads a
/// clock, by design).
fn handle_explain(state: &ServerState, body: &[u8], req_id: &str) -> Response {
    let doc = match body_json(body) {
        Ok(d) => d,
        Err(msg) => return error_response(400, msg, req_id),
    };
    let Some(pattern) = doc.get("pattern").and_then(Json::as_str) else {
        return error_response(400, "missing \"pattern\"", req_id);
    };
    let k = doc
        .get("k")
        .and_then(Json::as_u64)
        .map_or(state.config.k, |v| v as usize);
    let methods: Vec<Method> = match doc.get("methods") {
        None => vec![Method::Bwt { use_phi: true }, Method::ALGORITHM_A],
        Some(list) => {
            let Some(names) = list.as_array() else {
                return error_response(400, "\"methods\" must be an array of names", req_id);
            };
            let mut parsed = Vec::with_capacity(names.len());
            for name in names {
                let Some(name) = name.as_str() else {
                    return error_response(400, "\"methods\" must be an array of names", req_id);
                };
                match cli::parse_method(name) {
                    Ok(m) => parsed.push(m),
                    Err(e) => return error_response(400, e.to_string(), req_id),
                }
            }
            if parsed.is_empty() {
                return error_response(400, "\"methods\" must not be empty", req_id);
            }
            parsed
        }
    };
    let encoded = match kmm_dna::encode(pattern.as_bytes()) {
        Ok(p) => p,
        Err(e) => return error_response(400, format!("bad pattern: {e}"), req_id),
    };
    if encoded.is_empty() {
        return error_response(400, "\"pattern\" must be non-empty", req_id);
    }
    Response::json(200, &state.index.explain(&encoded, k, &methods).to_json())
}

fn handle_map(state: &ServerState, body: &[u8], worker: usize, req_id: &str) -> Response {
    let doc = match body_json(body) {
        Ok(d) => d,
        Err(msg) => return error_response(400, msg, req_id),
    };
    let Some(read) = doc.get("read").and_then(Json::as_str) else {
        return error_response(400, "missing \"read\"", req_id);
    };
    if state.config.panic_pattern.as_deref() == Some(read) {
        panic!("injected fault: panic pattern received");
    }
    let k = doc
        .get("k")
        .and_then(Json::as_u64)
        .map_or(state.config.k, |v| v as usize);
    let both_strands = doc
        .get("both_strands")
        .and_then(Json::as_bool)
        .unwrap_or(true);
    let encoded = match kmm_dna::encode(read.as_bytes()) {
        Ok(p) => p,
        Err(e) => return error_response(400, format!("bad read: {e}"), req_id),
    };
    let mapper = ReadMapper::new(
        &state.index,
        MapperConfig {
            k,
            both_strands,
            method: state.config.method,
        },
    );
    let shard = request_shard(state, worker);
    shard.annotate(&format!("http=/map id={req_id}"));
    let (report, truncated) = match request_timeout(state, &doc) {
        Some(budget) => {
            let token = CancelToken::with_deadline(budget);
            match mapper.map_with_deadline_recorded(&encoded, &token, &shard) {
                Outcome::Complete(r) => (r, false),
                Outcome::Truncated(r) => (r, true),
            }
        }
        None => (mapper.map_recorded(&encoded, &shard), false),
    };
    absorb_shard(state, &shard);
    let alignments: Vec<Json> = report
        .all
        .iter()
        .map(|a| {
            Json::obj([
                ("position", Json::UInt(a.position as u64)),
                ("mismatches", Json::UInt(a.mismatches as u64)),
                (
                    "strand",
                    Json::Str(
                        if a.strand == Strand::Forward {
                            "+"
                        } else {
                            "-"
                        }
                        .to_string(),
                    ),
                ),
            ])
        })
        .collect();
    let outcome = match report.outcome {
        MapOutcome::Unmapped => "unmapped",
        MapOutcome::Unique(_) => "unique",
        MapOutcome::Multi(_) => "multi",
    };
    Response::json(
        if truncated { 504 } else { 200 },
        &Json::obj([
            ("outcome", Json::Str(outcome.to_string())),
            ("mapq", Json::UInt(report.mapq as u64)),
            ("truncated", Json::Bool(truncated)),
            ("alignments", Json::Arr(alignments)),
        ]),
    )
}
