//! `kmm serve`: a zero-dependency event-loop HTTP/1.1 daemon over a
//! loaded index.
//!
//! ## Connection state machine
//!
//! The front end is a single nonblocking poll loop (see [`crate::poll`])
//! driving one state machine per connection:
//!
//! ```text
//! accept → ReadingHeaders → ReadingBody → Dispatched → Writing ─┐
//!              ↑                                        │       │
//!              └──────────────── KeepAliveIdle ←────────┘    Draining → close
//! ```
//!
//! All sockets are nonblocking; the loop owns every read and write, so a
//! slow or malicious client can never pin a worker. Requests are parsed
//! incrementally from a per-connection read buffer (HTTP keep-alive and
//! pipelining included); complete requests are handed to the `kmm-par`
//! workers through a bounded job queue and the responses come back to
//! the loop, which serialises them into a bounded per-connection write
//! buffer and resumes partial writes on `POLLOUT` readiness.
//!
//! ## Robustness controls
//!
//! * **Slow-loris defense** — a connection that makes no read/write
//!   progress for `--idle-timeout-ms` is evicted with a `408` (counted
//!   in `serve.shed_stall`); an idle keep-alive connection is closed
//!   silently. The failpoint `serve.conn.stall` marks an accepted
//!   connection as never-readable so eviction is deterministically
//!   testable; `serve.conn.reset` drops a connection at accept,
//!   simulating an abrupt client reset.
//! * **Per-tenant admission** — with `--tenant-rate N`, each tenant
//!   (the `X-Kmm-Tenant` header, or `anonymous`) gets a token bucket of
//!   N requests/second (burst N). Over-rate requests are shed with a
//!   `429` + `Retry-After` (`serve.shed_tenant`) without closing the
//!   connection. `POST /shutdown` is control-plane and exempt.
//! * **Graceful overload degradation** — three tiers chosen by live
//!   queue depth: a full job queue sheds with `429` (`serve.shed`,
//!   exactly one tick per 429); a queue at ≥half capacity marks requests
//!   *degraded*, clamping their deadline to 250 ms so they truncate via
//!   the existing [`CancelToken`] path instead of queueing further; and
//!   `/shutdown` stops accepting, finishes every in-flight request,
//!   flushes, and drains each socket before closing (no RSTs).
//! * **Connection cap** — past `--max-conns`, new connections get an
//!   immediate `429` (`serve.shed_conns`) without reading a byte.
//!
//! Endpoints:
//!
//! | Route | Method | Body |
//! |---|---|---|
//! | `/healthz` | GET | `ok` |
//! | `/metrics` | GET | Prometheus text exposition (process metrics, histogram buckets, per-endpoint sliding-window latency, connection gauges) |
//! | `/stats.json` | GET | the `MetricsSnapshot` JSON document |
//! | `/slow.json` | GET | the flight recorder's K slowest queries with full span trees |
//! | `/trace.json` | GET | Chrome trace-event JSON of retained query traces |
//! | `/search` | POST | `{"pattern": "ACGT..", "k"?, "method"?}` → occurrence list |
//! | `/map` | POST | `{"read": "ACGT..", "k"?, "both_strands"?}` → alignment list |
//! | `/explain` | POST | `{"pattern": "ACGT..", "k"?, "methods"?: ["a", "bwt", ..]}` → `kmm-explain/v1` cost report |
//! | `/dashboard` | GET | self-contained HTML dashboard polling `/stats.json`, `/slow.json`, `/explain` |
//! | `/shutdown` | POST | stop accepting, drain, exit |
//!
//! `POST /search` runs the exact [`KMismatchIndex::search_recorded`]
//! path the CLI uses, so its results are identical to `kmm search`.
//! Each request records into a private [`TraceRecorder`] shard (sharing
//! the server's trace epoch) absorbed after the response, so the flight
//! recorder always holds the K slowest queries the daemon has served. A
//! handler panic — reachable deliberately through the
//! `--panic-pattern` fault-injection hook or the `pool.worker.panic`
//! failpoint — is caught per request: the client gets a 500,
//! `serve.errors` ticks, and neither the recorder nor the worker pool is
//! poisoned.
//!
//! With `--timeout-ms` (or a per-request `"timeout_ms"` body field), the
//! search/map runs under a cooperative deadline: a query that exceeds
//! its budget returns `504 Gateway Timeout` whose JSON body carries
//! `"truncated": true` along with the (verified, partial) results found
//! so far. The `serve.handler.slow` and `serve.handler.err` failpoints
//! inject latency and failures at route entry for chaos testing.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{Read as _, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use kmm_core::{
    CancelToken, KMismatchIndex, MapOutcome, MapperConfig, Method, Outcome, ReadMapper, Strand,
};
use kmm_par::ThreadPool;
use kmm_telemetry::alloc::{fmt_bytes, mem_stats, phase_scope, MemPhase};
use kmm_telemetry::{
    chrome_trace_json, events, prometheus_mem_text, slow_queries_json, Counter, Json, NoopRecorder,
    Recorder, SlidingWindow, TraceConfig, TraceRecorder,
};

use crate::cli::{self, CliError, CliResult};
use crate::poll::{poll, PollFd, POLLIN, POLLOUT};

/// Configuration for one serving process.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker count (1 = handle requests inline on the event-loop
    /// thread; N > 1 = one event-loop thread plus N-1 search workers).
    pub threads: usize,
    /// Default mismatch budget for `/search` and `/map` requests that
    /// don't send their own `k`.
    pub k: usize,
    /// Default search method.
    pub method: Method,
    /// Flight-recorder capacity (`/slow.json` keeps this many).
    pub slowest: usize,
    /// Fault-injection hook: a `/search` or `/map` request whose
    /// pattern equals this string panics inside the handler. Testing
    /// only — exercises the panic-isolation path end to end.
    pub panic_pattern: Option<String>,
    /// Write the bound port (decimal, one line) here once listening —
    /// lets scripts using port 0 discover the ephemeral port.
    pub port_file: Option<PathBuf>,
    /// Default per-request deadline for `/search` and `/map` in
    /// milliseconds; a request body may override it with `"timeout_ms"`.
    /// `None` means no deadline.
    pub timeout_ms: Option<u64>,
    /// Reject request bodies whose declared `Content-Length` exceeds
    /// this, with a `413` sent before reading the body.
    pub max_body_bytes: usize,
    /// Open the index zero-copy (`mmap`) instead of reading it into
    /// memory. Startup cost becomes O(1) in the index size: the v3
    /// section table is verified, the payloads are borrowed from the
    /// mapping and faulted in on demand. Falls back to the read path if
    /// the platform cannot map the file.
    pub prefer_mmap: bool,
    /// Maximum requests served per connection before the server closes
    /// it (`Connection: close` on the final response). `0` disables
    /// keep-alive entirely: every response closes.
    pub keep_alive_requests: usize,
    /// A connection that makes no progress (no bytes read while a
    /// request is pending, no bytes written while a response is) for
    /// this long is evicted with a `408`; an idle keep-alive connection
    /// is closed silently.
    pub idle_timeout_ms: u64,
    /// Per-tenant admission rate in requests/second (token bucket,
    /// burst = rate), keyed by the `X-Kmm-Tenant` header (`anonymous`
    /// without one). `0` disables admission control.
    pub tenant_rate: u64,
    /// Maximum simultaneously open client connections; connections past
    /// the cap are refused with an immediate `429`.
    pub max_conns: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 1,
            k: 3,
            method: Method::ALGORITHM_A,
            slowest: 16,
            panic_pattern: None,
            port_file: None,
            timeout_ms: None,
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
            prefer_mmap: false,
            keep_alive_requests: DEFAULT_KEEP_ALIVE_REQUESTS,
            idle_timeout_ms: DEFAULT_IDLE_TIMEOUT_MS,
            tenant_rate: 0,
            max_conns: DEFAULT_MAX_CONNS,
        }
    }
}

/// Cap on header bytes and (default) on declared body length — this is
/// an operational endpoint, not a general web server.
const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Default for [`ServeConfig::max_body_bytes`].
pub const DEFAULT_MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// Default for [`ServeConfig::keep_alive_requests`].
pub const DEFAULT_KEEP_ALIVE_REQUESTS: usize = 100;

/// Default for [`ServeConfig::idle_timeout_ms`].
pub const DEFAULT_IDLE_TIMEOUT_MS: u64 = 5_000;

/// Default for [`ServeConfig::max_conns`].
pub const DEFAULT_MAX_CONNS: usize = 1024;

/// Poll timeout when every connection is quiescent.
const ACCEPT_POLL: Duration = Duration::from_millis(15);

/// Poll timeout while requests are in flight on the workers (their
/// completions arrive outside the poll set, so the loop wakes often).
const BUSY_POLL: Duration = Duration::from_millis(1);

/// Retire the listener after this many consecutive accept errors that
/// are not `WouldBlock`/`Interrupted`/`ConnectionAborted`. Transient
/// failures (fd pressure, backlog races) never string together this
/// long; a genuinely broken listener fd would otherwise spin the loop.
const ACCEPT_ERROR_LIMIT: u32 = 16;

/// Stop parsing further pipelined requests once this many response
/// bytes are waiting on a connection — bounds per-connection memory
/// against a client that pipelines requests but never reads.
const MAX_PIPELINE_WBUF: usize = 256 * 1024;

/// After the final response is flushed, wait this long for the client's
/// EOF before closing: closing with unread bytes in the receive buffer
/// would RST the connection and can destroy the response in flight.
const DRAIN_WINDOW: Duration = Duration::from_millis(250);

/// Deadline clamp applied to *degraded* requests (queue ≥ half full):
/// they truncate quickly via the `CancelToken` path instead of piling up.
const DEGRADED_TIMEOUT_MS: u64 = 250;

/// One parsed request.
struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
    /// `X-Kmm-Tenant` header, if present.
    tenant: Option<String>,
    /// Client asked for the connection to close after this response.
    wants_close: bool,
}

/// One response: status, content type, body, optional `Retry-After`.
struct Response {
    status: u16,
    content_type: &'static str,
    body: Vec<u8>,
    retry_after: Option<u64>,
}

impl Response {
    fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            retry_after: None,
        }
    }

    fn json(status: u16, doc: &Json) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: doc.to_pretty().into_bytes(),
            retry_after: None,
        }
    }

    fn with_retry_after(mut self, seconds: u64) -> Response {
        self.retry_after = Some(seconds);
        self
    }
}

/// Per-endpoint request accounting: lifetime totals plus a sliding
/// one-minute latency window for p50/p95/p99.
struct EndpointStats {
    route: &'static str,
    requests: AtomicU64,
    errors: AtomicU64,
    window: SlidingWindow,
}

impl EndpointStats {
    fn new(route: &'static str) -> EndpointStats {
        EndpointStats {
            route,
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            window: SlidingWindow::new(1, 60),
        }
    }

    fn record(&self, latency_ns: u64, is_error: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if is_error {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.window.record(latency_ns, is_error);
    }
}

/// Routes with dedicated accounting; anything else lands in `other`.
const ROUTES: [&str; 10] = [
    "/healthz",
    "/metrics",
    "/stats.json",
    "/slow.json",
    "/trace.json",
    "/search",
    "/map",
    "/explain",
    "/dashboard",
    "/shutdown",
];

/// Shared server state: the index, the global trace recorder, and the
/// per-endpoint accounting. Only `&self` methods — shared across workers
/// by reference under `std::thread::scope`.
struct ServerState {
    index: KMismatchIndex,
    config: ServeConfig,
    recorder: TraceRecorder,
    endpoints: Vec<EndpointStats>,
    other: EndpointStats,
    stop: AtomicBool,
    /// Live open-connection count for the `kmm_serve_open_connections`
    /// gauge (owned by the event loop, read by `/metrics` handlers).
    open_conns: AtomicU64,
}

/// Monotonic request-id source: every parsed request gets `req-N`,
/// which tags its access-log event, its trace shard, and any JSON error
/// body `/search` and `/map` return. Process-wide (not per-server) so
/// ids stay unique even when several servers share one event log.
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

fn next_request_id() -> String {
    format!("req-{}", NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed))
}

impl ServerState {
    fn new(index: KMismatchIndex, config: ServeConfig) -> ServerState {
        let recorder = TraceRecorder::with_config(TraceConfig {
            flight_capacity: config.slowest,
            ..TraceConfig::default()
        });
        ServerState {
            index,
            recorder,
            endpoints: ROUTES.iter().map(|r| EndpointStats::new(r)).collect(),
            other: EndpointStats::new("other"),
            stop: AtomicBool::new(false),
            open_conns: AtomicU64::new(0),
            config,
        }
    }

    fn endpoint(&self, path: &str) -> &EndpointStats {
        self.endpoints
            .iter()
            .find(|e| e.route == path)
            .unwrap_or(&self.other)
    }

    fn total_requests(&self) -> u64 {
        self.endpoints
            .iter()
            .chain(std::iter::once(&self.other))
            .map(|e| e.requests.load(Ordering::Relaxed))
            .sum()
    }

    fn total_errors(&self) -> u64 {
        self.endpoints
            .iter()
            .chain(std::iter::once(&self.other))
            .map(|e| e.errors.load(Ordering::Relaxed))
            .sum()
    }
}

/// One request handed from the event loop to a worker.
struct Job {
    /// Event-loop connection id the response belongs to.
    conn: u64,
    request: Request,
    req_id: String,
    /// Queue was ≥ half full at dispatch: clamp the deadline.
    degraded: bool,
}

/// Bounded handoff from the event loop to the worker threads.
/// `try_push` never blocks: a full queue hands the job back so the loop
/// can shed it with a `429` instead of stalling. `pop` blocks while the
/// queue is empty and open; closing wakes everyone and lets workers
/// drain what is already queued.
struct JobQueue {
    capacity: usize,
    inner: Mutex<(VecDeque<Job>, bool)>,
    readable: Condvar,
}

impl JobQueue {
    fn new(capacity: usize) -> JobQueue {
        JobQueue {
            capacity: capacity.max(1),
            inner: Mutex::new((VecDeque::new(), false)),
            readable: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, (VecDeque<Job>, bool)> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.lock().0.len()
    }

    /// Enqueue unless full or closed; on either, the job comes back to
    /// the caller, which decides how to refuse it.
    fn try_push(&self, job: Job) -> Result<(), Job> {
        let mut guard = self.lock();
        if guard.1 || guard.0.len() >= self.capacity {
            return Err(job);
        }
        guard.0.push_back(job);
        drop(guard);
        self.readable.notify_one();
        Ok(())
    }

    fn pop(&self) -> Option<Job> {
        let mut guard = self.lock();
        loop {
            if let Some(job) = guard.0.pop_front() {
                return Some(job);
            }
            if guard.1 {
                return None;
            }
            guard = self.readable.wait(guard).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn close(&self) {
        self.lock().1 = true;
        self.readable.notify_all();
    }
}

/// Finished responses travelling back from the workers to the event
/// loop. A plain mutexed vector: pushes never block, the loop drains it
/// every iteration (its poll timeout drops to [`BUSY_POLL`] while any
/// request is in flight).
#[derive(Default)]
struct Completions {
    inner: Mutex<Vec<(u64, Response)>>,
}

impl Completions {
    fn push(&self, conn: u64, response: Response) {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push((conn, response));
    }

    fn drain(&self) -> Vec<(u64, Response)> {
        std::mem::take(&mut *self.inner.lock().unwrap_or_else(|p| p.into_inner()))
    }
}

/// A server running on a background thread (for tests and embedding).
/// The CLI path ([`run`]) serves on the calling thread instead.
pub struct Server {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<String>,
}

impl Server {
    /// Bind and start serving `index` on a background thread.
    pub fn start(index: KMismatchIndex, config: ServeConfig) -> CliResult<Server> {
        let listener = bind(&config)?;
        let addr = listener.local_addr()?;
        let thread = std::thread::spawn(move || serve_on(listener, index, config, None));
        Ok(Server { addr, thread })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Wait for the server to exit (after a `POST /shutdown`) and return
    /// its summary line.
    pub fn join(self) -> String {
        self.thread
            .join()
            .unwrap_or_else(|_| "server thread panicked".to_string())
    }
}

/// `kmm serve`: load the index at `index_path` and serve it on the
/// calling thread until a `POST /shutdown` arrives. Returns the summary.
pub fn run(index_path: &std::path::Path, config: ServeConfig) -> CliResult<String> {
    let load_start = Instant::now();
    let (index, open) = cli::open_index_recorded(index_path, config.prefer_mmap, &NoopRecorder)?;
    let cold_start = load_start.elapsed();
    // Cold-start line: with `--mmap` the load is O(1) in the index size
    // (io_bytes = 0, the file is borrowed), so this duration stays flat
    // as the index grows; the read path scales with file_bytes.
    events::info(
        "serve",
        format!(
            "kmm serve: index opened via {} in {:.1}ms ({} file, {} read, {} mapped)",
            open.mode.name(),
            cold_start.as_secs_f64() * 1e3,
            fmt_bytes(open.file_bytes),
            fmt_bytes(open.io_bytes),
            fmt_bytes(open.bytes_mapped),
        ),
        &[
            ("load_mode", open.mode.name().to_string()),
            ("load_us", cold_start.as_micros().to_string()),
            ("file_bytes", open.file_bytes.to_string()),
            ("io_bytes", open.io_bytes.to_string()),
            ("bytes_mapped", open.bytes_mapped.to_string()),
        ],
    );
    let listener = bind(&config)?;
    let addr = listener.local_addr()?;
    events::info(
        "serve",
        format!(
            "kmm serve: listening on {addr} ({} worker{}, {} bp indexed)",
            config.threads,
            if config.threads == 1 { "" } else { "s" },
            index.len()
        ),
        &[
            ("addr", addr.to_string()),
            ("workers", config.threads.to_string()),
            ("indexed_bp", index.len().to_string()),
        ],
    );
    Ok(serve_on(listener, index, config, Some(open)))
}

fn bind(config: &ServeConfig) -> CliResult<TcpListener> {
    let listener = TcpListener::bind(&config.addr)
        .map_err(|e| CliError(format!("cannot bind {}: {e}", config.addr)))?;
    if let Some(path) = &config.port_file {
        let mut f = cli::create_output_file(path)?;
        writeln!(f, "{}", listener.local_addr()?.port())?;
    }
    Ok(listener)
}

/// The event loop plus worker fan-out; returns the shutdown summary.
fn serve_on(
    listener: TcpListener,
    index: KMismatchIndex,
    config: ServeConfig,
    open: Option<kmm_bwt::OpenStats>,
) -> String {
    let _serve = phase_scope(MemPhase::Serve);
    let threads = config.threads.max(1);
    let state = ServerState::new(index, config);
    // Surface how the index got here on `/metrics` and `/stats.json`:
    // `index.load.mode` is 1 (read) or 2 (mmap), and exactly one of
    // io_bytes / bytes_mapped is non-zero.
    if let Some(open) = open {
        state.recorder.add(Counter::IndexLoadIoBytes, open.io_bytes);
        state
            .recorder
            .add(Counter::IndexLoadMappedBytes, open.bytes_mapped);
        state
            .recorder
            .add(Counter::IndexLoadMode, open.mode.as_counter());
    }
    listener
        .set_nonblocking(true)
        .expect("cannot poll the listener");
    let pool = ThreadPool::new(threads);
    if pool.is_serial() {
        EventLoop::new(&listener, &state, Dispatch::Inline).run();
    } else {
        // Worker 0 runs the event loop; workers 1..N serve the bounded
        // job queue. A full queue sheds the request with an immediate
        // 429 rather than blocking the loop — overload slows clients
        // down, it never stops `accept` or starves connection I/O.
        let queue = JobQueue::new(threads * 4);
        let done = Completions::default();
        pool.broadcast(|tid| {
            if tid == 0 {
                EventLoop::new(
                    &listener,
                    &state,
                    Dispatch::Pool {
                        queue: &queue,
                        done: &done,
                    },
                )
                .run();
                // Graceful drain: the loop only exits once every
                // in-flight response is flushed, so closing the queue
                // here just releases the idle workers.
                queue.close();
            } else {
                while let Some(job) = queue.pop() {
                    let response =
                        process_request(&state, &job.request, tid, &job.req_id, job.degraded);
                    done.push(job.conn, response);
                }
            }
        });
    }
    let summary = format!(
        "served {} requests ({} errors)",
        state.total_requests(),
        state.total_errors()
    );
    events::info(
        "serve",
        format!("shutdown: {summary}"),
        &[
            ("requests", state.total_requests().to_string()),
            ("errors", state.total_errors().to_string()),
        ],
    );
    summary
}

/// Where completed parses go: inline execution (serial mode) or the
/// bounded worker queue plus its completion channel.
enum Dispatch<'a> {
    Inline,
    Pool {
        queue: &'a JobQueue,
        done: &'a Completions,
    },
}

/// Read-side position of one connection's state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Accumulating bytes until `\r\n\r\n`.
    ReadingHeaders,
    /// Headers parsed; waiting for `Content-Length` bytes of body.
    ReadingBody,
    /// A request is on a worker (or inline); responses may still be
    /// flushing for earlier pipelined requests.
    Dispatched,
    /// Response bytes pending in `wbuf`, nothing in flight.
    Writing,
    /// Between keep-alive requests; an idle timeout closes silently.
    KeepAliveIdle,
    /// Final response flushed and write side shut down; discarding
    /// client bytes until EOF or the drain window elapses.
    Draining,
}

/// One client connection owned by the event loop.
struct Conn {
    stream: TcpStream,
    fd: i32,
    state: ConnState,
    /// Unparsed request bytes.
    rbuf: Vec<u8>,
    /// Serialised responses not yet written; `wpos` is the resume
    /// offset after a partial write.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Close once `wbuf` drains (forced by errors, `Connection: close`,
    /// the keep-alive budget, or shutdown).
    close_after_write: bool,
    /// The in-flight request asked for close (checked at completion).
    pending_close: bool,
    /// Requests parsed on this connection (reuse = any beyond the first).
    requests: u64,
    /// Responses queued on this connection (drives the keep-alive budget).
    served: u64,
    /// `serve.conn.stall` fired at accept: never read, so the idle
    /// deadline eviction is deterministic.
    stalled: bool,
    /// Peer sent EOF (half-close); responses may still be deliverable.
    read_closed: bool,
    last_progress: Instant,
    drain_deadline: Option<Instant>,
}

impl Conn {
    fn new(stream: TcpStream, fd: i32, stalled: bool) -> Conn {
        Conn {
            stream,
            fd,
            state: ConnState::ReadingHeaders,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            close_after_write: false,
            pending_close: false,
            requests: 0,
            served: 0,
            stalled,
            read_closed: false,
            last_progress: Instant::now(),
            drain_deadline: None,
        }
    }

    fn wants_read(&self) -> bool {
        if self.stalled || self.read_closed {
            return false;
        }
        matches!(
            self.state,
            ConnState::ReadingHeaders
                | ConnState::ReadingBody
                | ConnState::KeepAliveIdle
                | ConnState::Draining
        )
    }

    fn wants_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    fn pending_write(&self) -> usize {
        self.wbuf.len() - self.wpos
    }
}

/// Per-tenant token bucket: `rate` tokens/second, burst = `rate`.
struct Bucket {
    tokens: f64,
    last: Instant,
}

impl Bucket {
    fn admit(&mut self, rate: u64, now: Instant) -> bool {
        let refill = now.duration_since(self.last).as_secs_f64() * rate as f64;
        self.tokens = (self.tokens + refill).min(rate as f64);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Outcome of trying to parse one request off the front of `rbuf`.
enum Parse {
    /// Need more bytes; `in_body` distinguishes the two reading states.
    Incomplete { in_body: bool },
    /// One full request; `consumed` bytes come off the buffer.
    Ready { request: Request, consumed: usize },
    /// Unframeable: send this and close (the byte stream is unusable).
    Bad(Response),
}

/// Incremental request parser. Framing failures come back as the
/// response to send: `413` for a declared body over `max_body` (refused
/// from the declared length alone, before the body arrives), `411` for
/// a `POST` without `Content-Length`, `400` for anything malformed.
fn try_parse(buf: &[u8], max_body: usize) -> Parse {
    let bad = |what: &str| Parse::Bad(Response::text(400, format!("bad request: {what}\n")));
    let Some(header_end) = find_header_end(buf) else {
        if buf.len() > MAX_HEADER_BYTES {
            return bad("headers too large");
        }
        return Parse::Incomplete { in_body: false };
    };
    let head = match std::str::from_utf8(&buf[..header_end]) {
        Ok(h) => h,
        Err(_) => return bad("non-utf8 headers"),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let Some(method) = parts.next() else {
        return bad("empty request line");
    };
    let Some(path) = parts.next() else {
        return bad("missing request path");
    };
    let version = parts.next().unwrap_or("HTTP/1.1");
    let mut content_length: Option<usize> = None;
    let mut tenant: Option<String> = None;
    let mut connection: Option<String> = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = match value.trim().parse() {
                    Ok(v) => Some(v),
                    Err(_) => return bad("unparseable content-length"),
                };
            } else if name.eq_ignore_ascii_case("x-kmm-tenant") {
                let t = value.trim();
                if !t.is_empty() {
                    tenant = Some(t.to_string());
                }
            } else if name.eq_ignore_ascii_case("connection") {
                connection = Some(value.trim().to_ascii_lowercase());
            }
        }
    }
    let content_length = match content_length {
        Some(len) => len,
        // A POST without a length has a body we cannot frame — refuse it
        // rather than guess (chunked encoding is not supported here).
        None if method == "POST" => {
            return Parse::Bad(Response::text(411, "POST requires Content-Length\n"))
        }
        None => 0,
    };
    if content_length > max_body {
        return Parse::Bad(Response::text(
            413,
            format!("body of {content_length} bytes exceeds the {max_body}-byte limit\n"),
        ));
    }
    let body_start = header_end + 4;
    if buf.len() < body_start + content_length {
        return Parse::Incomplete { in_body: true };
    }
    // Keep-alive negotiation: HTTP/1.1 defaults to keep-alive unless the
    // client sends `Connection: close`; anything else (1.0) closes
    // unless it explicitly asks for `keep-alive`.
    let has_token = |c: &str, token: &str| c.split(',').any(|t| t.trim() == token);
    let wants_close = match &connection {
        Some(c) if has_token(c, "close") => true,
        Some(c) if has_token(c, "keep-alive") => false,
        _ => !version.eq_ignore_ascii_case("HTTP/1.1"),
    };
    Parse::Ready {
        request: Request {
            method: method.to_string(),
            path: path.to_string(),
            body: buf[body_start..body_start + content_length].to_vec(),
            tenant,
            wants_close,
        },
        consumed: body_start + content_length,
    }
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    }
}

/// Append the wire form of `response` to a connection's write buffer.
/// Every response is `Content-Length`-framed, so keep-alive is safe.
fn serialize_response(response: &Response, keep_alive: bool, out: &mut Vec<u8>) {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        status_reason(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    if let Some(seconds) = response.retry_after {
        head.push_str(&format!("Retry-After: {seconds}\r\n"));
    }
    head.push_str("\r\n");
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(&response.body);
}

/// The nonblocking front end: owns every connection, parses requests,
/// applies admission control, and shuttles work to/from the dispatcher.
struct EventLoop<'a> {
    listener: &'a TcpListener,
    state: &'a ServerState,
    dispatch: Dispatch<'a>,
    /// Deterministic iteration order keeps eviction sweeps stable.
    conns: BTreeMap<u64, Conn>,
    next_id: u64,
    tenants: HashMap<String, Bucket>,
    idle_timeout: Duration,
    /// In-flight dispatches (jobs queued or running on workers).
    in_flight: usize,
    /// Consecutive unexplained accept errors; reset by any successful
    /// accept. See [`ACCEPT_ERROR_LIMIT`].
    accept_errors: u32,
    /// The listener kept failing past [`ACCEPT_ERROR_LIMIT`]: stop
    /// accepting but keep serving what is open until `/shutdown`.
    accept_dead: bool,
}

impl<'a> EventLoop<'a> {
    fn new(listener: &'a TcpListener, state: &'a ServerState, dispatch: Dispatch<'a>) -> Self {
        let idle_timeout = Duration::from_millis(state.config.idle_timeout_ms.max(1));
        EventLoop {
            listener,
            state,
            dispatch,
            conns: BTreeMap::new(),
            next_id: 0,
            tenants: HashMap::new(),
            idle_timeout,
            in_flight: 0,
            accept_errors: 0,
            accept_dead: false,
        }
    }

    fn run(mut self) {
        let listener_fd = self.listener.as_raw_fd();
        let mut fds: Vec<PollFd> = Vec::new();
        let mut ids: Vec<u64> = Vec::new();
        loop {
            let stopping = self.state.stop.load(Ordering::Relaxed);
            if stopping {
                self.sweep_for_shutdown();
                if self.conns.is_empty() && self.in_flight == 0 {
                    break;
                }
            }
            self.drain_completions();
            fds.clear();
            ids.clear();
            // Id 0 is the listener sentinel; connection ids start at 1.
            if !stopping && !self.accept_dead {
                fds.push(PollFd::new(listener_fd, POLLIN));
                ids.push(0);
            }
            let mut busy = self.in_flight > 0;
            for (&id, conn) in &self.conns {
                let mut events = 0i16;
                if conn.wants_read() {
                    events |= POLLIN;
                }
                if conn.wants_write() {
                    events |= POLLOUT;
                }
                if events != 0 {
                    fds.push(PollFd::new(conn.fd, events));
                    ids.push(id);
                }
                if conn.state == ConnState::Dispatched {
                    busy = true;
                }
            }
            let timeout = if busy { BUSY_POLL } else { ACCEPT_POLL };
            let _ = poll(&mut fds, timeout);
            for i in 0..fds.len() {
                let id = ids[i];
                if id == 0 {
                    if fds[i].ready(POLLIN) {
                        self.accept_pending();
                    }
                    continue;
                }
                if fds[i].ready(POLLOUT) {
                    self.on_writable(id);
                }
                if self.conns.contains_key(&id) && fds[i].ready(POLLIN) {
                    self.on_readable(id);
                }
            }
            self.drain_completions();
            self.enforce_deadlines();
        }
    }

    fn accept_pending(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.accept_errors = 0;
                    self.admit_conn(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // A connection can die in the backlog between the kernel's
                // SYN-ACK and our accept (ECONNABORTED); that kills one
                // pending connection, not the listener. Skip to the next.
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionAborted => continue,
                Err(e) => {
                    // Unknown accept errors (EMFILE under fd pressure, etc.)
                    // are usually transient: back off until the next poll
                    // tick. Only a long unbroken error run — never once
                    // interleaved with a successful accept — retires the
                    // listener, so a wedged fd cannot spin the event loop.
                    self.accept_errors += 1;
                    events::warn(
                        "serve",
                        format!(
                            "accept failed ({}/{ACCEPT_ERROR_LIMIT}): {e}",
                            self.accept_errors
                        ),
                        &[("kind", format!("{:?}", e.kind()))],
                    );
                    if self.accept_errors >= ACCEPT_ERROR_LIMIT {
                        self.accept_dead = true;
                    }
                    break;
                }
            }
        }
    }

    fn admit_conn(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        self.state.recorder.add(Counter::ServeConnsOpened, 1);
        // Failpoint `serve.conn.reset`: drop the connection at accept —
        // the client sees an abrupt reset, the loop carries on.
        if kmm_faults::check("serve.conn.reset").is_some() {
            self.state.recorder.add(Counter::ServeConnsClosed, 1);
            return;
        }
        // Failpoint `serve.conn.stall`: admit the connection but never
        // read from it — a deterministic slow-loris for the eviction
        // path (no wall-clock races in tests).
        let stalled = kmm_faults::check("serve.conn.stall").is_some();
        let over_cap = self.conns.len() >= self.state.config.max_conns.max(1);
        let fd = stream.as_raw_fd();
        self.next_id += 1;
        let id = self.next_id;
        let mut conn = Conn::new(stream, fd, stalled);
        if over_cap {
            // Past --max-conns: refuse without reading a byte. The 429
            // still drains the socket (Draining state) so the refusal
            // survives the close.
            self.state.recorder.add(Counter::ServeShedConns, 1);
            self.state.other.record(0, true);
            let req_id = next_request_id();
            events::warn(
                "serve.access",
                "connection refused at max-conns -> 429",
                &[
                    ("request_id", req_id),
                    ("status", "429".to_string()),
                    ("outcome", "shed".to_string()),
                    ("cause", "conns".to_string()),
                ],
            );
            conn.stalled = false;
            conn.close_after_write = true;
            conn.state = ConnState::Writing;
            serialize_response(
                &Response::text(429, "server at connection capacity, retry later\n")
                    .with_retry_after(1),
                false,
                &mut conn.wbuf,
            );
        }
        self.state.open_conns.fetch_add(1, Ordering::Relaxed);
        self.conns.insert(id, conn);
        if over_cap {
            self.flush(id);
        }
    }

    fn close_conn(&mut self, id: u64) {
        if self.conns.remove(&id).is_some() {
            self.state.open_conns.fetch_sub(1, Ordering::Relaxed);
            self.state.recorder.add(Counter::ServeConnsClosed, 1);
        }
    }

    /// Pull worker completions and resume their connections.
    fn drain_completions(&mut self) {
        let done = match &self.dispatch {
            Dispatch::Pool { done, .. } => *done,
            Dispatch::Inline => return,
        };
        for (id, response) in done.drain() {
            self.in_flight = self.in_flight.saturating_sub(1);
            let Some(conn) = self.conns.get(&id) else {
                continue; // connection died while its request ran
            };
            let wants_close = conn.pending_close;
            self.queue_response(id, &response, wants_close);
            self.flush(id);
            // The response may unblock the next pipelined request.
            self.advance(id);
        }
    }

    /// Nonblocking reads into `rbuf` (or the drain sink), then parse.
    fn on_readable(&mut self, id: u64) {
        enum After {
            Close,
            Advance,
            Stay,
        }
        let after = {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            let cap = MAX_HEADER_BYTES + self.state.config.max_body_bytes + 4096;
            let mut chunk = [0u8; 4096];
            let mut after = After::Stay;
            loop {
                if conn.state == ConnState::Draining {
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => {
                            after = After::Close;
                            break;
                        }
                        Ok(_) => continue,
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            after = After::Close;
                            break;
                        }
                    }
                }
                if conn.rbuf.len() >= cap {
                    // Backpressure: stop reading until the parser (or a
                    // framing rejection) makes room.
                    after = After::Advance;
                    break;
                }
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.read_closed = true;
                        after = After::Advance;
                        break;
                    }
                    Ok(n) => {
                        conn.rbuf.extend_from_slice(&chunk[..n]);
                        conn.last_progress = Instant::now();
                        if conn.state == ConnState::KeepAliveIdle {
                            conn.state = ConnState::ReadingHeaders;
                        }
                        after = After::Advance;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        after = After::Close;
                        break;
                    }
                }
            }
            after
        };
        match after {
            After::Close => self.close_conn(id),
            After::Advance => self.advance(id),
            After::Stay => {}
        }
    }

    /// Parse-and-dispatch loop: admits every complete request buffered
    /// on the connection until one is in flight, more bytes are needed,
    /// the write buffer is saturated, or the stream is unframeable.
    fn advance(&mut self, id: u64) {
        loop {
            let parse = {
                let Some(conn) = self.conns.get(&id) else {
                    return;
                };
                if conn.state == ConnState::Dispatched
                    || conn.state == ConnState::Draining
                    || conn.close_after_write
                {
                    return;
                }
                if conn.pending_write() > MAX_PIPELINE_WBUF {
                    return; // bounded write buffer: client must read first
                }
                try_parse(&conn.rbuf, self.state.config.max_body_bytes)
            };
            match parse {
                Parse::Incomplete { in_body } => {
                    let Some(conn) = self.conns.get_mut(&id) else {
                        return;
                    };
                    if conn.read_closed {
                        if !conn.rbuf.is_empty() {
                            // Half a request then EOF: unframeable.
                            self.reject_parse(
                                id,
                                Response::text(400, "bad request: truncated request\n"),
                            );
                        } else if conn.wants_write() {
                            conn.close_after_write = true;
                        } else {
                            // Clean EOF between requests: silent close.
                            self.close_conn(id);
                        }
                        return;
                    }
                    conn.state = if !conn.rbuf.is_empty() {
                        if in_body {
                            ConnState::ReadingBody
                        } else {
                            ConnState::ReadingHeaders
                        }
                    } else if conn.wants_write() {
                        ConnState::Writing
                    } else if conn.requests > 0 {
                        ConnState::KeepAliveIdle
                    } else {
                        ConnState::ReadingHeaders
                    };
                    return;
                }
                Parse::Bad(response) => {
                    self.reject_parse(id, response);
                    return;
                }
                Parse::Ready { request, consumed } => {
                    {
                        let Some(conn) = self.conns.get_mut(&id) else {
                            return;
                        };
                        conn.rbuf.drain(..consumed);
                        if conn.requests > 0 {
                            self.state.recorder.add(Counter::ServeKeepaliveReuses, 1);
                        }
                        conn.requests += 1;
                        conn.last_progress = Instant::now();
                    }
                    if self.admit_request(id, request) {
                        return; // one request in flight per connection
                    }
                    // Rejected (shed) or completed inline: the response
                    // is queued; keep consuming pipelined requests.
                }
            }
        }
    }

    /// A framing failure: account it, send the 4xx, close afterwards.
    fn reject_parse(&mut self, id: u64, response: Response) {
        let req_id = next_request_id();
        self.state.other.record(0, true);
        self.state.recorder.add(Counter::ServeErrors, 1);
        events::warn(
            "serve.access",
            format!("malformed request -> {}", response.status),
            &[
                ("request_id", req_id),
                ("status", response.status.to_string()),
                ("outcome", "error".to_string()),
            ],
        );
        if let Some(conn) = self.conns.get_mut(&id) {
            conn.close_after_write = true;
        }
        self.queue_response(id, &response, true);
        self.flush(id);
    }

    /// Admission control + dispatch for one parsed request. Returns
    /// `true` when the request went in flight (stop parsing this
    /// connection until its completion arrives).
    fn admit_request(&mut self, id: u64, request: Request) -> bool {
        let req_id = next_request_id();
        // Tier 0: per-tenant token buckets (ahead of the queue, so one
        // noisy tenant cannot consume the shared shed budget). The
        // shutdown control plane is exempt.
        let rate = self.state.config.tenant_rate;
        if rate > 0 && request.path != "/shutdown" {
            let now = Instant::now();
            let name = request
                .tenant
                .clone()
                .unwrap_or_else(|| "anonymous".to_string());
            let bucket = self.tenants.entry(name.clone()).or_insert(Bucket {
                tokens: rate as f64,
                last: now,
            });
            if !bucket.admit(rate, now) {
                self.state.recorder.add(Counter::ServeShedTenant, 1);
                self.state.endpoint(&request.path).record(0, true);
                events::warn(
                    "serve.access",
                    format!("tenant over rate -> 429 ({})", request.path),
                    &[
                        ("request_id", req_id),
                        ("status", "429".to_string()),
                        ("outcome", "shed".to_string()),
                        ("cause", "tenant".to_string()),
                        ("tenant", name),
                    ],
                );
                self.queue_response(
                    id,
                    &Response::text(429, "tenant over rate limit, retry later\n")
                        .with_retry_after(1),
                    request.wants_close,
                );
                self.flush(id);
                return false;
            }
        }
        match &self.dispatch {
            Dispatch::Inline => {
                let response = process_request(self.state, &request, 0, &req_id, false);
                self.queue_response(id, &response, request.wants_close);
                self.flush(id);
                false
            }
            Dispatch::Pool { queue, .. } => {
                // Tier 2: at ≥half queue depth, requests run degraded —
                // their deadline is clamped so they truncate instead of
                // stacking up behind a slow burst.
                let degraded = queue.len() * 2 >= queue.capacity();
                let wants_close = request.wants_close;
                let job = Job {
                    conn: id,
                    request,
                    req_id,
                    degraded,
                };
                match queue.try_push(job) {
                    Ok(()) => {
                        self.in_flight += 1;
                        let conn = self
                            .conns
                            .get_mut(&id)
                            .expect("conn exists while admitting");
                        conn.state = ConnState::Dispatched;
                        conn.pending_close = wants_close;
                        true
                    }
                    Err(job) => {
                        // Tier 1: full queue sheds with a 429 — exactly
                        // one `serve.shed` tick per shed response, which
                        // the chaos suite asserts.
                        self.state.recorder.add(Counter::ServeShed, 1);
                        self.state.other.record(0, true);
                        events::warn(
                            "serve.access",
                            "connection shed -> 429",
                            &[
                                ("request_id", job.req_id),
                                ("status", "429".to_string()),
                                ("outcome", "shed".to_string()),
                                ("cause", "queue".to_string()),
                            ],
                        );
                        self.queue_response(
                            id,
                            &Response::text(429, "server overloaded, retry later\n")
                                .with_retry_after(1),
                            job.request.wants_close,
                        );
                        self.flush(id);
                        false
                    }
                }
            }
        }
    }

    /// Serialise a response onto the connection, deciding keep-alive.
    fn queue_response(&mut self, id: u64, response: &Response, wants_close: bool) {
        let stopping = self.state.stop.load(Ordering::Relaxed);
        let cfg = &self.state.config;
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let keep = cfg.keep_alive_requests > 0
            && conn.served + 1 < cfg.keep_alive_requests as u64
            && !wants_close
            && !conn.close_after_write
            && !conn.read_closed
            && !stopping;
        serialize_response(response, keep, &mut conn.wbuf);
        conn.served += 1;
        conn.last_progress = Instant::now();
        if !keep {
            conn.close_after_write = true;
        }
        if conn.state == ConnState::Dispatched {
            conn.state = ConnState::Writing;
        }
    }

    fn on_writable(&mut self, id: u64) {
        if self.flush(id) {
            self.advance(id);
        }
    }

    /// Write as much pending response data as the socket takes,
    /// resuming at `wpos` after partial writes. Returns `true` when the
    /// buffer fully drained and the connection went back to parsing.
    fn flush(&mut self, id: u64) -> bool {
        enum After {
            Stay,
            Close,
            Drain,
            Parse,
        }
        let after = {
            let Some(conn) = self.conns.get_mut(&id) else {
                return false;
            };
            let mut broken = false;
            while conn.wpos < conn.wbuf.len() {
                match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                    Ok(0) => {
                        broken = true;
                        break;
                    }
                    Ok(n) => {
                        conn.wpos += n;
                        conn.last_progress = Instant::now();
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        broken = true;
                        break;
                    }
                }
            }
            if broken {
                After::Close
            } else if conn.wpos == conn.wbuf.len() && !conn.wbuf.is_empty() {
                conn.wbuf.clear();
                conn.wpos = 0;
                if conn.state == ConnState::Dispatched {
                    After::Stay // earlier pipelined responses flushed; a request is still out
                } else if conn.close_after_write {
                    After::Drain
                } else {
                    conn.state = ConnState::KeepAliveIdle;
                    After::Parse
                }
            } else {
                After::Stay
            }
        };
        match after {
            After::Close => {
                self.close_conn(id);
                false
            }
            After::Drain => {
                self.begin_drain(id);
                false
            }
            After::Parse => true,
            After::Stay => false,
        }
    }

    /// Final response flushed: half-close and wait briefly for the
    /// client's EOF so the kernel never RSTs unread response bytes.
    fn begin_drain(&mut self, id: u64) {
        let read_closed = {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            let _ = conn.stream.shutdown(Shutdown::Write);
            conn.state = ConnState::Draining;
            conn.stalled = false;
            conn.drain_deadline = Some(Instant::now() + DRAIN_WINDOW);
            conn.read_closed
        };
        if read_closed {
            // Peer already sent EOF: nothing left to wait for.
            self.close_conn(id);
        }
    }

    /// Deadline sweep: slow-loris eviction, idle keep-alive reaping,
    /// stuck-writer cleanup, drain expiry.
    fn enforce_deadlines(&mut self) {
        let now = Instant::now();
        let mut evict: Vec<u64> = Vec::new();
        let mut close: Vec<u64> = Vec::new();
        for (&id, conn) in &self.conns {
            match conn.state {
                ConnState::Draining => {
                    if conn.drain_deadline.map_or(true, |d| now >= d) {
                        close.push(id);
                    }
                }
                ConnState::KeepAliveIdle => {
                    if now.duration_since(conn.last_progress) >= self.idle_timeout {
                        close.push(id);
                    }
                }
                ConnState::ReadingHeaders | ConnState::ReadingBody => {
                    if now.duration_since(conn.last_progress) >= self.idle_timeout {
                        evict.push(id);
                    }
                }
                ConnState::Writing => {
                    // A reader that stopped reading its response: after
                    // the idle window there is no way to deliver
                    // anything, so just close.
                    if now.duration_since(conn.last_progress) >= self.idle_timeout {
                        close.push(id);
                    }
                }
                ConnState::Dispatched => {} // the worker's CancelToken owns this clock
            }
        }
        for id in close {
            self.close_conn(id);
        }
        for id in evict {
            self.evict_stalled(id);
        }
    }

    /// Slow-loris eviction: a connection that went `idle_timeout`
    /// without completing its request gets a `408` and closes.
    fn evict_stalled(&mut self, id: u64) {
        self.state.recorder.add(Counter::ServeShedStall, 1);
        self.state.other.record(0, true);
        let req_id = next_request_id();
        events::warn(
            "serve.access",
            "connection stalled past idle-timeout -> 408",
            &[
                ("request_id", req_id),
                ("status", "408".to_string()),
                ("outcome", "shed".to_string()),
                ("cause", "stall".to_string()),
            ],
        );
        if let Some(conn) = self.conns.get_mut(&id) {
            conn.stalled = false;
            conn.close_after_write = true;
        }
        self.queue_response(
            id,
            &Response::text(408, "request did not progress before the idle timeout\n"),
            true,
        );
        self.flush(id);
    }

    /// After `/shutdown`: connections with nothing owed (idle, or
    /// mid-read with no response pending) close immediately; in-flight
    /// and writing connections finish first.
    fn sweep_for_shutdown(&mut self) {
        let ids: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                matches!(
                    c.state,
                    ConnState::KeepAliveIdle | ConnState::ReadingHeaders | ConnState::ReadingBody
                ) && !c.wants_write()
            })
            .map(|(&id, _)| id)
            .collect();
        for id in ids {
            self.close_conn(id);
        }
    }
}

/// Run one request end to end (panic-isolated), account for it, and
/// emit its access-log line. Runs on a worker thread in pool mode, on
/// the event-loop thread in serial mode.
fn process_request(
    state: &ServerState,
    request: &Request,
    worker: usize,
    req_id: &str,
    degraded: bool,
) -> Response {
    let start = Instant::now();
    state.recorder.add(Counter::ServeRequests, 1);
    let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // Failpoint: `pool.worker.panic` exercises the panic-isolation
        // path — the catch below keeps the daemon up.
        kmm_faults::panic_gate("pool.worker.panic");
        route(state, request, worker, req_id, degraded)
    }))
    .unwrap_or_else(|_| error_response(500, "internal error: request handler panicked", req_id));
    let is_error = response.status >= 400;
    if is_error {
        state.recorder.add(Counter::ServeErrors, 1);
    }
    let elapsed = start.elapsed();
    state
        .endpoint(&request.path)
        .record(elapsed.as_nanos() as u64, is_error);
    // One access-log event per request; its request_id is the same id a
    // JSON error body carries, so client-side and server-side views of a
    // failure can be joined.
    let message = format!("{} {} -> {}", request.method, request.path, response.status);
    // `outcome` classifies the handler result beyond the bare status
    // code: a 504 body still carries verified partial results
    // ("truncated"), a 429 was refused before any handler ran ("shed").
    let outcome = match response.status {
        504 => "truncated",
        429 => "shed",
        s if s >= 400 => "error",
        _ => "ok",
    };
    let fields = [
        ("request_id", req_id.to_string()),
        ("status", response.status.to_string()),
        ("duration_us", elapsed.as_micros().to_string()),
        ("outcome", outcome.to_string()),
    ];
    if is_error {
        events::warn("serve.access", message, &fields);
    } else {
        events::info("serve.access", message, &fields);
    }
    response
}

/// JSON error body tagged with the request id — the same id the access
/// log records, so a client-quoted failure can be matched to the
/// server-side line.
fn error_response(status: u16, message: impl Into<String>, req_id: &str) -> Response {
    Response::json(
        status,
        &Json::obj([
            ("error", Json::Str(message.into())),
            ("request_id", Json::Str(req_id.to_string())),
        ]),
    )
}

fn route(
    state: &ServerState,
    request: &Request,
    worker: usize,
    req_id: &str,
    degraded: bool,
) -> Response {
    // Failpoints at route entry: `serve.handler.slow` injects latency
    // (the sleep happens inside `check`), `serve.handler.err` fails the
    // request with a 500 (or panics, exercising the catch_unwind above).
    let _ = kmm_faults::check("serve.handler.slow");
    match kmm_faults::check("serve.handler.err") {
        Some(kmm_faults::Action::Err) => {
            return Response::text(500, "injected fault at failpoint 'serve.handler.err'\n")
        }
        Some(kmm_faults::Action::Panic) => {
            panic!("injected fault at failpoint 'serve.handler.err'")
        }
        _ => {}
    }
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/metrics") => Response {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: render_metrics(state).into_bytes(),
            retry_after: None,
        },
        ("GET", "/stats.json") => Response::json(200, &state.recorder.snapshot().to_json()),
        ("GET", "/slow.json") => {
            Response::json(200, &slow_queries_json(&state.recorder.flight().slowest()))
        }
        ("GET", "/trace.json") => Response::json(200, &chrome_trace_json(&state.recorder.traces())),
        ("GET", "/dashboard") => Response {
            status: 200,
            content_type: "text/html; charset=utf-8",
            body: crate::dashboard::HTML.as_bytes().to_vec(),
            retry_after: None,
        },
        ("POST", "/search") => handle_search(state, &request.body, worker, req_id, degraded),
        ("POST", "/map") => handle_map(state, &request.body, worker, req_id, degraded),
        ("POST", "/explain") => handle_explain(state, &request.body, req_id),
        ("POST", "/shutdown") => {
            state.stop.store(true, Ordering::Relaxed);
            Response::text(200, "shutting down\n")
        }
        ("GET", "/search" | "/map" | "/explain" | "/shutdown") => {
            Response::text(405, "use POST for this endpoint\n")
        }
        _ => Response::text(404, format!("no route for {}\n", request.path)),
    }
}

/// Process metrics plus per-endpoint HTTP series.
fn render_metrics(state: &ServerState) -> String {
    let mut out = state.recorder.snapshot().to_prometheus();
    out.push_str("# HELP kmm_http_requests_total Requests handled since startup, by endpoint.\n");
    out.push_str("# TYPE kmm_http_requests_total counter\n");
    for e in state.endpoints.iter().chain(std::iter::once(&state.other)) {
        out.push_str(&format!(
            "kmm_http_requests_total{{endpoint=\"{}\"}} {}\n",
            e.route,
            e.requests.load(Ordering::Relaxed)
        ));
    }
    out.push_str("# HELP kmm_http_errors_total Error responses (status >= 400) since startup, by endpoint.\n");
    out.push_str("# TYPE kmm_http_errors_total counter\n");
    for e in state.endpoints.iter().chain(std::iter::once(&state.other)) {
        out.push_str(&format!(
            "kmm_http_errors_total{{endpoint=\"{}\"}} {}\n",
            e.route,
            e.errors.load(Ordering::Relaxed)
        ));
    }
    // Last-minute latency percentiles per endpoint (gauges: they move
    // with the window). Idle endpoints are emitted as zeros rather than
    // skipped: a series that disappears when quiet breaks rate() and
    // absence-based alerting downstream.
    out.push_str("# HELP kmm_http_window_requests Requests in the trailing one-minute window.\n");
    out.push_str("# TYPE kmm_http_window_requests gauge\n");
    out.push_str(
        "# HELP kmm_http_window_errors Error responses in the trailing one-minute window.\n",
    );
    out.push_str("# TYPE kmm_http_window_errors gauge\n");
    out.push_str("# HELP kmm_http_latency_ns Latency percentiles over the trailing one-minute window (0 when idle).\n");
    out.push_str("# TYPE kmm_http_latency_ns gauge\n");
    out.push_str("# HELP kmm_http_window_samples Latency samples currently held in the sliding window histogram.\n");
    out.push_str("# TYPE kmm_http_window_samples gauge\n");
    for e in state.endpoints.iter().chain(std::iter::once(&state.other)) {
        let w = e.window.summary();
        out.push_str(&format!(
            "kmm_http_window_requests{{endpoint=\"{}\"}} {}\n",
            e.route, w.count
        ));
        out.push_str(&format!(
            "kmm_http_window_samples{{endpoint=\"{}\"}} {}\n",
            e.route, w.hist.count
        ));
        out.push_str(&format!(
            "kmm_http_window_errors{{endpoint=\"{}\"}} {}\n",
            e.route, w.errors
        ));
        for (q, label) in [(0.50, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
            // An empty window reports percentile 0 (not NaN, not an
            // absent series).
            out.push_str(&format!(
                "kmm_http_latency_ns{{endpoint=\"{}\",quantile=\"{label}\"}} {}\n",
                e.route,
                w.hist.percentile(q)
            ));
        }
    }
    // Live connection gauge: counters for opened/closed/keep-alive
    // reuse and the per-cause sheds come from the recorder snapshot
    // above (emitted at zero from startup like every counter).
    out.push_str("# HELP kmm_serve_open_connections Currently open client connections.\n");
    out.push_str("# TYPE kmm_serve_open_connections gauge\n");
    out.push_str(&format!(
        "kmm_serve_open_connections {}\n",
        state.open_conns.load(Ordering::Relaxed)
    ));
    // Flight-recorder occupancy: how full the slowest-K ring is. When
    // occupancy == capacity, `/slow.json` is evicting — every new slow
    // query displaces a retained one.
    let flight = state.recorder.flight();
    out.push_str(
        "# HELP kmm_flight_recorder_occupancy Query traces currently retained by the flight recorder.\n",
    );
    out.push_str("# TYPE kmm_flight_recorder_occupancy gauge\n");
    out.push_str(&format!("kmm_flight_recorder_occupancy {}\n", flight.len()));
    out.push_str(
        "# HELP kmm_flight_recorder_capacity Flight recorder capacity (the K of slowest-K).\n",
    );
    out.push_str("# TYPE kmm_flight_recorder_capacity gauge\n");
    out.push_str(&format!(
        "kmm_flight_recorder_capacity {}\n",
        flight.capacity()
    ));
    out.push_str(&prometheus_mem_text(&mem_stats()));
    out
}

/// Per-request tracing shard sharing the server recorder's epoch; merged
/// into the global recorder after the query so `/slow.json` and
/// `/metrics` see every request. Creating it on panic-prone paths is
/// deliberate: a panicking handler only loses its own shard.
fn request_shard(state: &ServerState, worker: usize) -> TraceRecorder {
    TraceRecorder::shard(state.recorder.trace_epoch(), worker as u32, true)
}

fn absorb_shard(state: &ServerState, shard: &TraceRecorder) {
    state.recorder.absorb(&shard.snapshot());
    state.recorder.absorb_traces(shard.drain());
}

fn body_json(body: &[u8]) -> Result<Json, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not utf-8".to_string())?;
    Json::parse(text).map_err(|e| format!("bad json body: {e}"))
}

/// Effective deadline for a request: the body's `"timeout_ms"` overrides
/// the server default; `0` truncates immediately (an already-expired
/// token, the documented meaning of a zero budget). A *degraded*
/// request (dispatched while the queue was ≥ half full) has its budget
/// clamped to [`DEGRADED_TIMEOUT_MS`] so overload turns into fast
/// truncation instead of a growing backlog.
fn request_timeout(state: &ServerState, doc: &Json, degraded: bool) -> Option<Duration> {
    let ms = doc
        .get("timeout_ms")
        .and_then(Json::as_u64)
        .or(state.config.timeout_ms);
    let ms = if degraded {
        Some(ms.map_or(DEGRADED_TIMEOUT_MS, |m| m.min(DEGRADED_TIMEOUT_MS)))
    } else {
        ms
    };
    ms.map(Duration::from_millis)
}

fn handle_search(
    state: &ServerState,
    body: &[u8],
    worker: usize,
    req_id: &str,
    degraded: bool,
) -> Response {
    let doc = match body_json(body) {
        Ok(d) => d,
        Err(msg) => return error_response(400, msg, req_id),
    };
    let Some(pattern) = doc.get("pattern").and_then(Json::as_str) else {
        return error_response(400, "missing \"pattern\"", req_id);
    };
    if state.config.panic_pattern.as_deref() == Some(pattern) {
        panic!("injected fault: panic pattern received");
    }
    let k = doc
        .get("k")
        .and_then(Json::as_u64)
        .map_or(state.config.k, |v| v as usize);
    let method = match doc.get("method").and_then(Json::as_str) {
        None => state.config.method,
        Some(name) => match cli::parse_method(name) {
            Ok(m) => m,
            Err(e) => return error_response(400, e.to_string(), req_id),
        },
    };
    let encoded = match kmm_dna::encode(pattern.as_bytes()) {
        Ok(p) => p,
        Err(e) => return error_response(400, format!("bad pattern: {e}"), req_id),
    };
    let shard = request_shard(state, worker);
    shard.annotate(&format!("http=/search id={req_id}"));
    let (result, truncated) = match request_timeout(state, &doc, degraded) {
        Some(budget) => {
            let token = CancelToken::with_deadline(budget);
            match state
                .index
                .search_with_deadline_recorded(&encoded, k, method, &token, &shard)
            {
                Outcome::Complete(r) => (r, false),
                Outcome::Truncated(r) => (r, true),
            }
        }
        None => (
            state.index.search_recorded(&encoded, k, method, &shard),
            false,
        ),
    };
    absorb_shard(state, &shard);
    let occurrences: Vec<Json> = result
        .occurrences
        .iter()
        .map(|o| {
            Json::obj([
                ("position", Json::UInt(o.position as u64)),
                ("mismatches", Json::UInt(o.mismatches as u64)),
            ])
        })
        .collect();
    // A truncated search is a 504 — but the body still carries every
    // verified match found before the deadline, flagged as partial.
    Response::json(
        if truncated { 504 } else { 200 },
        &Json::obj([
            ("count", Json::UInt(occurrences.len() as u64)),
            ("k", Json::UInt(k as u64)),
            ("method", Json::Str(method.label().to_string())),
            ("truncated", Json::Bool(truncated)),
            ("occurrences", Json::Arr(occurrences)),
        ]),
    )
}

/// `POST /explain`: the CLI's EXPLAIN engine over the served index.
/// Body: `{"pattern": "ACGT..", "k"?, "methods"?: ["a", "bwt", ...]}`.
/// Without `"methods"` the comparison set is BWT vs Algorithm A — the
/// two always-resident methods — plus the bidirectional scheme search
/// when the served index file carries the reverse-BWT mirror; a
/// default explain never triggers a lazy suffix-tree or mirror build
/// on a large served index. The report is the
/// same deterministic `kmm-explain/v1` document `kmm explain --json`
/// prints; the query runs serially on the handling worker and is not
/// recorded into the flight recorder (its recorder never reads a
/// clock, by design).
fn handle_explain(state: &ServerState, body: &[u8], req_id: &str) -> Response {
    let doc = match body_json(body) {
        Ok(d) => d,
        Err(msg) => return error_response(400, msg, req_id),
    };
    let Some(pattern) = doc.get("pattern").and_then(Json::as_str) else {
        return error_response(400, "missing \"pattern\"", req_id);
    };
    let k = doc
        .get("k")
        .and_then(Json::as_u64)
        .map_or(state.config.k, |v| v as usize);
    let methods: Vec<Method> = match doc.get("methods") {
        None => {
            let mut set = vec![Method::Bwt { use_phi: true }, Method::ALGORITHM_A];
            if state.index.has_mirror() {
                set.push(Method::Bidirectional);
            }
            set
        }
        Some(list) => {
            let Some(names) = list.as_array() else {
                return error_response(400, "\"methods\" must be an array of names", req_id);
            };
            let mut parsed = Vec::with_capacity(names.len());
            for name in names {
                let Some(name) = name.as_str() else {
                    return error_response(400, "\"methods\" must be an array of names", req_id);
                };
                match cli::parse_method(name) {
                    Ok(m) => parsed.push(m),
                    Err(e) => return error_response(400, e.to_string(), req_id),
                }
            }
            if parsed.is_empty() {
                return error_response(400, "\"methods\" must not be empty", req_id);
            }
            parsed
        }
    };
    let encoded = match kmm_dna::encode(pattern.as_bytes()) {
        Ok(p) => p,
        Err(e) => return error_response(400, format!("bad pattern: {e}"), req_id),
    };
    if encoded.is_empty() {
        return error_response(400, "\"pattern\" must be non-empty", req_id);
    }
    Response::json(200, &state.index.explain(&encoded, k, &methods).to_json())
}

fn handle_map(
    state: &ServerState,
    body: &[u8],
    worker: usize,
    req_id: &str,
    degraded: bool,
) -> Response {
    let doc = match body_json(body) {
        Ok(d) => d,
        Err(msg) => return error_response(400, msg, req_id),
    };
    let Some(read) = doc.get("read").and_then(Json::as_str) else {
        return error_response(400, "missing \"read\"", req_id);
    };
    if state.config.panic_pattern.as_deref() == Some(read) {
        panic!("injected fault: panic pattern received");
    }
    let k = doc
        .get("k")
        .and_then(Json::as_u64)
        .map_or(state.config.k, |v| v as usize);
    let both_strands = doc
        .get("both_strands")
        .and_then(Json::as_bool)
        .unwrap_or(true);
    let encoded = match kmm_dna::encode(read.as_bytes()) {
        Ok(p) => p,
        Err(e) => return error_response(400, format!("bad read: {e}"), req_id),
    };
    let mapper = ReadMapper::new(
        &state.index,
        MapperConfig {
            k,
            both_strands,
            method: state.config.method,
        },
    );
    let shard = request_shard(state, worker);
    shard.annotate(&format!("http=/map id={req_id}"));
    let (report, truncated) = match request_timeout(state, &doc, degraded) {
        Some(budget) => {
            let token = CancelToken::with_deadline(budget);
            match mapper.map_with_deadline_recorded(&encoded, &token, &shard) {
                Outcome::Complete(r) => (r, false),
                Outcome::Truncated(r) => (r, true),
            }
        }
        None => (mapper.map_recorded(&encoded, &shard), false),
    };
    absorb_shard(state, &shard);
    let alignments: Vec<Json> = report
        .all
        .iter()
        .map(|a| {
            Json::obj([
                ("position", Json::UInt(a.position as u64)),
                ("mismatches", Json::UInt(a.mismatches as u64)),
                (
                    "strand",
                    Json::Str(
                        if a.strand == Strand::Forward {
                            "+"
                        } else {
                            "-"
                        }
                        .to_string(),
                    ),
                ),
            ])
        })
        .collect();
    let outcome = match report.outcome {
        MapOutcome::Unmapped => "unmapped",
        MapOutcome::Unique(_) => "unique",
        MapOutcome::Multi(_) => "multi",
    };
    Response::json(
        if truncated { 504 } else { 200 },
        &Json::obj([
            ("outcome", Json::Str(outcome.to_string())),
            ("mapq", Json::UInt(report.mapq as u64)),
            ("truncated", Json::Bool(truncated)),
            ("alignments", Json::Arr(alignments)),
        ]),
    )
}
